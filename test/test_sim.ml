(** Tests for the discrete-event simulator: interpreter semantics, signal
    delta cycles, process trees, TOC arcs, servers, deadlock detection and
    trace equivalence. *)

open Spec
open Spec.Ast
open Helpers

let s = Parser.stmts_of_string_exn
let e = Parser.expr_of_string_exn

let leaf_prog ?vars ?signals ?procs ?servers stmts =
  Program.make ?vars ?signals ?procs ?servers "t" (Behavior.leaf "L" stmts)

let int_vars names = List.map (fun n -> Builder.int_var ~init:0 n) names

(* --- straight-line statements ---------------------------------------------- *)

let test_assign_and_final () =
  let r = run_ok (leaf_prog ~vars:(int_vars [ "x" ]) (s "x := 2 + 3;")) in
  check_value "x" (vint 5) (final r "x")

let test_if_branches () =
  let prog v =
    leaf_prog
      ~vars:[ Builder.int_var ~init:v "x"; Builder.int_var "r" ]
      (s "if x > 0 then r := 1; elsif x < 0 then r := 2; else r := 3; end if;")
  in
  check_value "then" (vint 1) (final (run_ok (prog 5)) "r");
  check_value "elsif" (vint 2) (final (run_ok (prog (-5))) "r");
  check_value "else" (vint 3) (final (run_ok (prog 0)) "r")

let test_while_loop () =
  let r =
    run_ok
      (leaf_prog ~vars:(int_vars [ "i"; "acc" ])
         (s "while i < 5 do acc := acc + i; i := i + 1; end while;"))
  in
  check_value "acc" (vint 10) (final r "acc")

let test_for_loop () =
  let r =
    run_ok
      (leaf_prog ~vars:(int_vars [ "i"; "acc" ])
         (s "for i := 1 to 4 do acc := acc + i; end for;"))
  in
  check_value "acc" (vint 10) (final r "acc");
  check_value "i ends at hi" (vint 4) (final r "i")

let test_for_empty_range () =
  let r =
    run_ok
      (leaf_prog ~vars:(int_vars [ "i"; "acc" ])
         (s "acc := 7; for i := 3 to 2 do acc := 0; end for;"))
  in
  check_value "body skipped" (vint 7) (final r "acc")

let test_for_bounds_evaluated_once () =
  (* Changing the bound variable inside the body must not extend the
     loop. *)
  let r =
    run_ok
      (leaf_prog ~vars:(int_vars [ "i"; "n"; "acc" ])
         (s "n := 3; for i := 1 to n do n := 10; acc := acc + 1; end for;"))
  in
  check_value "three trips" (vint 3) (final r "acc")

let test_emit_trace () =
  let r =
    run_ok
      (leaf_prog ~vars:(int_vars [ "x" ])
         (s "x := 1; emit \"a\" x; x := 2; emit \"a\" x; emit \"b\" x * 10;"))
  in
  Alcotest.(check (list value_testable)) "a" [ vint 1; vint 2 ] (trace_values "a" r);
  Alcotest.(check (list value_testable)) "b" [ vint 20 ] (trace_values "b" r)

(* --- signals and delta cycles ------------------------------------------------ *)

let test_signal_delta_delay () =
  (* A signal assignment is not visible until the next delta: reading it
     immediately after still yields the old value. *)
  let prog =
    leaf_prog
      ~vars:(int_vars [ "seen" ])
      ~signals:[ Builder.int_signal ~init:5 "sg" ]
      (s "sg <= 9; seen := sg;")
  in
  let r = run_ok prog in
  check_value "old value read" (vint 5) (final r "seen")

let test_wait_until_wakes_on_commit () =
  let ping =
    Behavior.leaf "P1" (s "go <= true; wait until ack = true; done_v := 1;")
  in
  let pong = Behavior.leaf "P2" (s "wait until go = true; ack <= true;") in
  let prog =
    Program.make
      ~vars:(int_vars [ "done_v" ])
      ~signals:[ Builder.bool_signal ~init:false "go"; Builder.bool_signal ~init:false "ack" ]
      "t"
      (Behavior.par "TOP" [ ping; pong ])
  in
  let r = run_ok prog in
  check_value "handshake completed" (vint 1) (final r "done_v");
  Alcotest.(check bool) "took deltas" true (r.Sim.Engine.r_deltas >= 2)

let test_wait_until_true_proceeds () =
  let r = run_ok (leaf_prog ~vars:(int_vars [ "x" ]) (s "wait until 1 < 2; x := 1;")) in
  check_value "no block" (vint 1) (final r "x")

let test_last_writer_wins_within_delta () =
  let a = Behavior.leaf "A" (s "sg <= 1;") in
  let b = Behavior.leaf "B" (s "sg <= 2;") in
  let watcher =
    Behavior.leaf "W" (s "wait until sg > 0; seen := sg;")
  in
  let prog =
    Program.make
      ~vars:(int_vars [ "seen" ])
      ~signals:[ Builder.int_signal ~init:0 "sg" ]
      "t"
      (Behavior.par "TOP" [ a; b; watcher ])
  in
  let r = run_ok prog in
  (* Process order is deterministic: B's write is scheduled last. *)
  check_value "deterministic resolution" (vint 2) (final r "seen")

(* --- procedures --------------------------------------------------------------- *)

let test_proc_in_out () =
  let double =
    Builder.proc "double"
      ~params:[ Builder.param_in "a" (TInt 16); Builder.param_out "r" (TInt 16) ]
      (s "r := a * 2;")
  in
  let r =
    run_ok
      (leaf_prog ~procs:[ double ]
         ~vars:(int_vars [ "x" ])
         (s "call double(21, out x);"))
  in
  check_value "out param aliases" (vint 42) (final r "x")

let test_proc_locals_and_nesting () =
  let inner =
    Builder.proc "inner"
      ~params:[ Builder.param_out "r" (TInt 16) ]
      ~vars:[ Builder.int_var ~init:5 "loc" ]
      (s "r := loc + 1;")
  in
  let outer =
    Builder.proc "outer"
      ~params:[ Builder.param_out "r" (TInt 16) ]
      ~vars:[ Builder.int_var "mid" ]
      (s "call inner(out mid); r := mid * 10;")
  in
  let r =
    run_ok
      (leaf_prog ~procs:[ inner; outer ]
         ~vars:(int_vars [ "x" ])
         (s "call outer(out x);"))
  in
  check_value "nested" (vint 60) (final r "x")

let test_proc_wait_inside () =
  (* A procedure can suspend (that is how the bus protocols work). *)
  let wait_go =
    Builder.proc "wait_go" (s "wait until go = true;")
  in
  let main = Behavior.leaf "M" (s "call wait_go(); x := 1;") in
  let kick = Behavior.leaf "K" (s "go <= true;") in
  let prog =
    Program.make ~procs:[ wait_go ]
      ~vars:(int_vars [ "x" ])
      ~signals:[ Builder.bool_signal ~init:false "go" ]
      "t"
      (Behavior.par "TOP" [ main; kick ])
  in
  check_value "resumed inside proc" (vint 1) (final (run_ok prog) "x")

(* --- behavior trees ------------------------------------------------------------ *)

let test_seq_fallthrough () =
  let prog =
    Program.make ~vars:(int_vars [ "x" ]) "t"
      (Behavior.seq "T"
         [
           Behavior.arm (Behavior.leaf "A" (s "x := x + 1;"));
           Behavior.arm (Behavior.leaf "B" (s "x := x * 10;"));
         ])
  in
  check_value "A then B" (vint 10) (final (run_ok prog) "x")

let test_seq_toc_branch () =
  let prog v =
    Program.make
      ~vars:[ Builder.int_var ~init:v "x"; Builder.int_var "r" ]
      "t"
      (Behavior.seq "T"
         [
           Behavior.arm (Behavior.leaf "A" [])
             ~transitions:
               [ Builder.goto ~cond:(e "x > 0") "POS";
                 Builder.goto "NEG" ];
           Behavior.arm (Behavior.leaf "POS" (s "r := 1;"))
             ~transitions:[ Builder.complete () ];
           Behavior.arm (Behavior.leaf "NEG" (s "r := 2;"));
         ])
  in
  check_value "positive" (vint 1) (final (run_ok (prog 5)) "r");
  check_value "negative" (vint 2) (final (run_ok (prog (-5))) "r")

let test_seq_no_arc_fires_completes () =
  let prog =
    Program.make ~vars:(int_vars [ "r" ]) "t"
      (Behavior.seq "T"
         [
           Behavior.arm (Behavior.leaf "A" [])
             ~transitions:[ Builder.goto ~cond:(e "1 > 2") "B" ];
           Behavior.arm (Behavior.leaf "B" (s "r := 1;"));
         ])
  in
  check_value "B skipped" (vint 0) (final (run_ok prog) "r")

let test_seq_loop_via_goto () =
  check_value "ping-pong loops" (vint 30)
    (final (run_ok Workloads.Smallspecs.ping_pong) "n")

let test_rearmed_behavior_reinitializes_locals () =
  (* Re-entering an arm must reset its locals to their initializers. *)
  let body =
    Behavior.leaf ~vars:[ Builder.int_var ~init:0 "loc" ] "BODY"
      (s "loc := loc + 1; emit \"loc\" loc; n := n + 1;")
  in
  let prog =
    Program.make ~vars:(int_vars [ "n" ]) "t"
      (Behavior.seq "T"
         [
           Behavior.arm body
             ~transitions:
               [ Builder.goto ~cond:(e "n < 3") "BODY"; Builder.complete () ];
         ])
  in
  let r = run_ok prog in
  Alcotest.(check (list value_testable)) "always 1" [ vint 1; vint 1; vint 1 ]
    (trace_values "loc" r)

let test_par_waits_for_all () =
  let prog =
    Program.make ~vars:(int_vars [ "a"; "b"; "r" ]) "t"
      (Behavior.seq "T"
         [
           Behavior.arm
             (Behavior.par "P"
                [
                  Behavior.leaf "X" (s "a := 1;");
                  Behavior.leaf "Y" (s "for q := 0 to 9 do b := b + 1; end for;");
                ]);
           Behavior.arm (Behavior.leaf "AFTER" (s "r := a + b;"));
         ])
  in
  let prog =
    { prog with
      p_top =
        { prog.p_top with b_vars = [ Builder.int_var "q" ] } }
  in
  check_value "both done first" (vint 11) (final (run_ok prog) "r")

let test_empty_compositions_complete () =
  let prog =
    Program.make "t"
      (Behavior.seq "T"
         [ Behavior.arm (Behavior.par "P" []); Behavior.arm (Behavior.seq "S" []) ])
  in
  ignore (run_ok prog)

(* --- servers, deadlock, limits --------------------------------------------------- *)

let test_server_allows_completion () =
  let server =
    Behavior.leaf "SRV" (s "while true do wait until ping = true; pong <= true; wait until ping = false; pong <= false; end while;")
  in
  let client =
    Behavior.leaf "CLI"
      (s "ping <= true; wait until pong = true; ping <= false; x := 1;")
  in
  let prog =
    Program.make ~servers:[ "SRV" ]
      ~vars:(int_vars [ "x" ])
      ~signals:
        [ Builder.bool_signal ~init:false "ping";
          Builder.bool_signal ~init:false "pong" ]
      "t"
      (Behavior.par "TOP" [ client; server ])
  in
  let r = run_ok prog in
  check_value "client finished" (vint 1) (final r "x")

let test_unregistered_server_is_deadlock () =
  let server = Behavior.leaf "SRV" (s "while true do wait until ping = true; end while;") in
  let prog =
    Program.make
      ~signals:[ Builder.bool_signal ~init:false "ping" ]
      "t"
      (Behavior.par "TOP" [ Behavior.leaf "CLI" [] ; server ])
  in
  match (Sim.Engine.run prog).Sim.Engine.r_outcome with
  | Sim.Engine.Deadlock who ->
    Alcotest.(check bool) "names the waiter" true
      (List.exists (fun d -> String.length d > 0) who)
  | o -> Alcotest.failf "expected deadlock, got %s" (Sim.Engine.outcome_to_string o)

let test_deadlock_two_waiters () =
  let a = Behavior.leaf "A" (s "wait until sb = true; sa <= true;") in
  let b = Behavior.leaf "B" (s "wait until sa = true; sb <= true;") in
  let prog =
    Program.make
      ~signals:
        [ Builder.bool_signal ~init:false "sa"; Builder.bool_signal ~init:false "sb" ]
      "t"
      (Behavior.par "TOP" [ a; b ])
  in
  match (Sim.Engine.run prog).Sim.Engine.r_outcome with
  | Sim.Engine.Deadlock who -> Alcotest.(check int) "both blocked" 2 (List.length who)
  | o -> Alcotest.failf "expected deadlock, got %s" (Sim.Engine.outcome_to_string o)

let test_step_limit () =
  let prog = leaf_prog ~vars:(int_vars [ "x" ]) (s "while 1 < 2 do x := x + 1; end while;") in
  let config = { Sim.Engine.default_config with max_steps = 1000 } in
  match (Sim.Engine.run ~config prog).Sim.Engine.r_outcome with
  | Sim.Engine.Step_limit -> ()
  | o -> Alcotest.failf "expected step limit, got %s" (Sim.Engine.outcome_to_string o)

let test_cancel_hook_stops_both_kernels () =
  (* An infinite loop that would otherwise run to the step limit: a
     polling hook that trips must surface as Cancelled, on both kernels. *)
  let prog = leaf_prog ~vars:(int_vars [ "x" ]) (s "while 1 < 2 do x := x + 1; end while;") in
  let hooks () =
    (* Let a little work happen before cancelling, so the kernel is
       interrupted mid-flight rather than before its first round. *)
    let polls = ref 0 in
    { Sim.Engine.no_hooks with
      Sim.Engine.h_poll = Some (fun () -> incr polls; !polls > 3) }
  in
  (match (Sim.Engine.run ~hooks:(hooks ()) prog).Sim.Engine.r_outcome with
  | Sim.Engine.Cancelled -> ()
  | o -> Alcotest.failf "engine: expected cancelled, got %s" (Sim.Engine.outcome_to_string o));
  (match (Sim.Reference.run ~hooks:(hooks ()) prog).Sim.Engine.r_outcome with
  | Sim.Engine.Cancelled -> ()
  | o -> Alcotest.failf "reference: expected cancelled, got %s" (Sim.Engine.outcome_to_string o));
  Alcotest.(check string) "printable" "cancelled"
    (Sim.Engine.outcome_to_string Sim.Engine.Cancelled)

let test_cancel_hook_false_never_interferes () =
  let prog = leaf_prog ~vars:(int_vars [ "x" ]) (s "x := 41 + 1;") in
  let hooks =
    { Sim.Engine.no_hooks with Sim.Engine.h_poll = Some (fun () -> false) }
  in
  let r = Sim.Engine.run ~hooks prog in
  Alcotest.(check bool) "completes" true
    (r.Sim.Engine.r_outcome = Sim.Engine.Completed)

let test_runtime_error_unbound () =
  let prog =
    Program.make "t" (Behavior.leaf "L" [ Assign ("ghost", Expr.int 1) ])
  in
  (* Bypass validation deliberately: the engine must fail loudly. *)
  match Sim.Engine.run prog with
  | exception Sim.Interp.Run_error _ -> ()
  | _ -> Alcotest.fail "expected Run_error"

(* --- traces ----------------------------------------------------------------------- *)

let test_trace_equivalence () =
  let mk tags = List.mapi (fun i t -> { Sim.Trace.ev_tag = t; ev_value = vint i; ev_delta = i }) tags in
  Alcotest.(check bool) "equal" true
    (Sim.Trace.equivalent (mk [ "a"; "b" ]) (mk [ "a"; "b" ]));
  Alcotest.(check bool) "differs" false
    (Sim.Trace.equivalent (mk [ "a"; "b" ]) (mk [ "b"; "a" ]))

let test_trace_projection () =
  let ev tag v = { Sim.Trace.ev_tag = tag; ev_value = vint v; ev_delta = 0 } in
  let t1 = [ ev "a" 1; ev "b" 10; ev "a" 2 ] in
  let t2 = [ ev "b" 10; ev "a" 1; ev "a" 2 ] in
  let t3 = [ ev "a" 2; ev "b" 10; ev "a" 1 ] in
  Alcotest.(check bool) "interleaving ignored" true
    (Sim.Trace.projection_equivalent t1 t2);
  Alcotest.(check bool) "per-tag order kept" false
    (Sim.Trace.projection_equivalent t1 t3)

let test_first_divergence () =
  let ev tag v = { Sim.Trace.ev_tag = tag; ev_value = vint v; ev_delta = 0 } in
  Alcotest.(check (option int)) "at 1" (Some 1)
    (Sim.Trace.first_divergence [ ev "a" 1; ev "b" 2 ] [ ev "a" 1; ev "b" 3 ]);
  Alcotest.(check (option int)) "length" (Some 1)
    (Sim.Trace.first_divergence [ ev "a" 1; ev "b" 2 ] [ ev "a" 1 ]);
  Alcotest.(check (option int)) "same" None
    (Sim.Trace.first_divergence [ ev "a" 1 ] [ ev "a" 1 ])

(* --- arrays ---------------------------------------------------------------------------- *)

let test_array_read_write () =
  let prog =
    Program.make
      ~vars:
        [ Builder.var "a" (Ast.TArray (16, 4)) ~init:(Ast.VInt 9);
          Builder.int_var "x" ]
      "t"
      (Behavior.leaf ~vars:[ Builder.int_var "i" ] "L"
         (s "x := a[0]; for i := 0 to 3 do a[i] := i * i; end for; emit \"sum\" a[0] + a[1] + a[2] + a[3];"))
  in
  let r = run_ok prog in
  check_value "fill init read" (vint 9) (final r "x");
  Alcotest.(check (list value_testable)) "0+1+4+9" [ vint 14 ]
    (trace_values "sum" r);
  check_value "element final" (vint 4) (final r "a[2]")

let test_array_out_of_bounds () =
  let prog =
    Program.make
      ~vars:[ Builder.var "a" (Ast.TArray (16, 2)) ]
      "t"
      (Behavior.leaf "L" [ Ast.Assign_idx ("a", Expr.int 5, Expr.int 1) ])
  in
  match Sim.Engine.run prog with
  | exception Sim.Interp.Run_error msg ->
    Alcotest.(check bool) "mentions bounds" true
      (let sub = "out of bounds" in
       let n = String.length sub and m = String.length msg in
       let rec go i = i + n <= m && (String.sub msg i n = sub || go (i + 1)) in
       go 0)
  | _ -> Alcotest.fail "expected bounds error"

let test_array_reinit_on_rearm () =
  (* Behavior-local arrays reinitialize when the arm re-enters. *)
  let body =
    Behavior.leaf
      ~vars:[ Builder.var "buf" (Ast.TArray (16, 2)) ~init:(Ast.VInt 0) ]
      "BODY"
      (s "buf[0] := buf[0] + 5; emit \"b0\" buf[0]; n := n + 1;")
  in
  let prog =
    Program.make ~vars:(int_vars [ "n" ]) "t"
      (Behavior.seq "T"
         [
           Behavior.arm body
             ~transitions:
               [ Builder.goto ~cond:(e "n < 2") "BODY"; Builder.complete () ];
         ])
  in
  let r = run_ok prog in
  Alcotest.(check (list value_testable)) "fresh each time" [ vint 5; vint 5 ]
    (trace_values "b0" r)

(* --- waveforms ----------------------------------------------------------------------- *)

let contains ~sub str =
  let n = String.length sub and m = String.length str in
  let rec go i = i + n <= m && (String.sub str i n = sub || go (i + 1)) in
  n = 0 || go 0

let test_signal_trace_recorded () =
  let prog =
    Program.make
      ~signals:[ Builder.bool_signal ~init:false "go"; Builder.int_signal ~init:0 "d" ]
      "t"
      (Behavior.leaf "L" (s "go <= true; d <= 7; wait until go = true; d <= 9;"))
  in
  let config = { Sim.Engine.default_config with trace_signals = true } in
  let r = Sim.Engine.run ~config prog in
  (* Two commits: {go:=true, d:=7} then {d:=9}. *)
  Alcotest.(check int) "two deltas with changes" 2
    (List.length r.Sim.Engine.r_signal_trace);
  let _, first = List.hd r.Sim.Engine.r_signal_trace in
  Alcotest.(check int) "both changed first" 2 (List.length first)

let test_signal_trace_off_by_default () =
  let prog =
    Program.make
      ~signals:[ Builder.bool_signal ~init:false "go" ]
      "t"
      (Behavior.leaf "L" (s "go <= true;"))
  in
  let r = Sim.Engine.run prog in
  Alcotest.(check int) "empty" 0 (List.length r.Sim.Engine.r_signal_trace)

let test_vcd_output () =
  let prog =
    Program.make
      ~signals:
        [ Builder.bool_signal ~init:false "go"; Builder.int_signal ~width:8 ~init:3 "d" ]
      "wave"
      (Behavior.leaf "L" (s "go <= true; d <= 7; wait until go = true; go <= false;"))
  in
  let config = { Sim.Engine.default_config with trace_signals = true } in
  let r = Sim.Engine.run ~config prog in
  let vcd = Sim.Vcd.of_result prog r in
  List.iter
    (fun frag ->
      Alcotest.(check bool) frag true (contains ~sub:frag vcd))
    [
      "$scope module wave $end";
      "$var wire 1 ! go $end";
      "$var reg 8 \" d $end";
      "$enddefinitions $end";
      "#0";
      "b00000011 \"";  (* initial d = 3 *)
      "b00000111 \"";  (* d = 7 *)
      "1!";
      "0!";
    ]

let test_vcd_ids_unique () =
  let signals = List.init 200 (fun i -> Builder.bool_signal (Printf.sprintf "s%d" i)) in
  let prog = Program.make ~signals "many" (Behavior.leaf "L" []) in
  let config = { Sim.Engine.default_config with trace_signals = true } in
  let r = Sim.Engine.run ~config prog in
  let vcd = Sim.Vcd.of_result prog r in
  (* extract the id column of each $var line *)
  let ids =
    String.split_on_char '\n' vcd
    |> List.filter_map (fun l ->
           match String.split_on_char ' ' l with
           | [ "$var"; _; _; id; _; "$end" ] -> Some id
           | _ -> None)
  in
  Alcotest.(check int) "200 vars" 200 (List.length ids);
  Alcotest.(check int) "unique ids" 200
    (List.length (List.sort_uniq compare ids))

(* --- determinism -------------------------------------------------------------------- *)

let prop_simulation_deterministic =
  QCheck.Test.make ~count:25 ~name:"simulation is deterministic"
    QCheck.(make Gen.(int_range 1 5000))
    (fun seed ->
      let p =
        Workloads.Generator.program
          { Workloads.Generator.default_config with gen_seed = seed }
      in
      let r1 = Sim.Engine.run p and r2 = Sim.Engine.run p in
      r1.Sim.Engine.r_trace = r2.Sim.Engine.r_trace
      && r1.Sim.Engine.r_final = r2.Sim.Engine.r_final
      && r1.Sim.Engine.r_deltas = r2.Sim.Engine.r_deltas)

let prop_generated_specs_complete =
  QCheck.Test.make ~count:40 ~name:"generated specs terminate"
    QCheck.(make Gen.(int_range 1 5000))
    (fun seed ->
      let p =
        Workloads.Generator.program
          { Workloads.Generator.default_config with gen_seed = seed }
      in
      (Sim.Engine.run p).Sim.Engine.r_outcome = Sim.Engine.Completed)

let () =
  Alcotest.run "sim"
    [
      ( "statements",
        [
          tc "assign" test_assign_and_final;
          tc "if branches" test_if_branches;
          tc "while" test_while_loop;
          tc "for" test_for_loop;
          tc "for empty range" test_for_empty_range;
          tc "for bounds once" test_for_bounds_evaluated_once;
          tc "emit" test_emit_trace;
        ] );
      ( "signals",
        [
          tc "delta delay" test_signal_delta_delay;
          tc "wait wakes on commit" test_wait_until_wakes_on_commit;
          tc "wait on true" test_wait_until_true_proceeds;
          tc "last writer wins" test_last_writer_wins_within_delta;
        ] );
      ( "procedures",
        [
          tc "in/out" test_proc_in_out;
          tc "locals + nesting" test_proc_locals_and_nesting;
          tc "wait inside" test_proc_wait_inside;
        ] );
      ( "behavior trees",
        [
          tc "seq fallthrough" test_seq_fallthrough;
          tc "TOC branch" test_seq_toc_branch;
          tc "no arc completes" test_seq_no_arc_fires_completes;
          tc "goto loop" test_seq_loop_via_goto;
          tc "re-arm reinitializes" test_rearmed_behavior_reinitializes_locals;
          tc "par barrier" test_par_waits_for_all;
          tc "empty compositions" test_empty_compositions_complete;
        ] );
      ( "servers & limits",
        [
          tc "server allows completion" test_server_allows_completion;
          tc "unregistered server deadlocks" test_unregistered_server_is_deadlock;
          tc "deadlock detection" test_deadlock_two_waiters;
          tc "step limit" test_step_limit;
          tc "cancel hook stops both kernels" test_cancel_hook_stops_both_kernels;
          tc "inert cancel hook" test_cancel_hook_false_never_interferes;
          tc "unbound is loud" test_runtime_error_unbound;
        ] );
      ( "arrays",
        [
          tc "read/write" test_array_read_write;
          tc "bounds checked" test_array_out_of_bounds;
          tc "reinit on re-arm" test_array_reinit_on_rearm;
        ] );
      ( "waveforms",
        [
          tc "signal trace recorded" test_signal_trace_recorded;
          tc "off by default" test_signal_trace_off_by_default;
          tc "vcd output" test_vcd_output;
          tc "vcd ids unique" test_vcd_ids_unique;
        ] );
      ( "traces",
        [
          tc "equivalence" test_trace_equivalence;
          tc "projection" test_trace_projection;
          tc "first divergence" test_first_divergence;
        ] );
      ( "properties",
        [
          QCheck_alcotest.to_alcotest prop_simulation_deterministic;
          QCheck_alcotest.to_alcotest prop_generated_specs_complete;
        ] );
    ]
