(** Tests for the dataflow layer ([lib/lint]'s CFG builder, the generic
    fixpoint solver with its interval and name-set lattices, the
    program-level flow summary) and for the gated [lint --fix]
    rewriter. *)

open Spec
open Ast
open Helpers

let stmts = Parser.stmts_of_string_exn
let parse = Parser.program_of_string_exn

let fixture name =
  let path = Filename.concat "fixtures" name in
  let ic = open_in_bin path in
  let s = really_input_string ic (in_channel_length ic) in
  close_in ic;
  parse s

let with_code c ds =
  List.filter (fun d -> String.equal d.Diagnostic.d_code c) ds

(* --- CFG golden tests: one per statement shape -------------------------- *)

let cfg_of src = Lint.Cfg.to_string (Lint.Cfg.build (stmts src))

let golden name src expected =
  tc name (fun () -> Alcotest.(check string) name expected (cfg_of src))

let cfg_goldens =
  [
    golden "straight line" "x := 1; s <= x; emit \"t\" x; skip;"
      "0 entry -> 1\n\
       1 x := 1 -> 2\n\
       2 s <= x -> 3\n\
       3 emit \"t\" x -> 4\n\
       4 skip -> 5\n\
       5 exit -> \n";
    golden "if/elsif/else"
      "if c then x := 1; elsif d then x := 2; else x := 3; end if; y := x;"
      "0 entry -> 1\n\
       1 branch c -> t:2,f:3\n\
       2 x := 1 -> 6\n\
       3 branch d -> t:4,f:5\n\
       4 x := 2 -> 6\n\
       5 x := 3 -> 6\n\
       6 y := x -> 7\n\
       7 exit -> \n";
    golden "while loop" "while i < 3 do i := i + 1; end while;"
      "0 entry -> 1\n\
       1 branch i < 3 -> t:2,f:3\n\
       2 i := i + 1 -> 1\n\
       3 exit -> \n";
    golden "for loop (synthesized nodes)"
      "for i := 0 to 3 do acc := acc + i; end for;"
      "0 entry -> 1\n\
       1* i := 0 -> 2\n\
       2* branch i <= 3 -> t:3,f:5\n\
       3 acc := acc + i -> 4\n\
       4* i := i + 1 -> 2\n\
       5 exit -> \n";
    golden "wait and call" "wait until go = true; call p(1, out_v);"
      "0 entry -> 1\n\
       1 wait until go = true -> 2\n\
       2 call p/2 -> 3\n\
       3 exit -> \n";
  ]

(* Structural invariants the builder must keep on every shape above. *)
let test_cfg_wellformed () =
  List.iter
    (fun src ->
      let g = Lint.Cfg.build (stmts src) in
      let n = Lint.Cfg.size g in
      Array.iter
        (fun (node : Lint.Cfg.node) ->
          List.iter
            (fun (_, s) ->
              Alcotest.(check bool) "succ in range" true (s >= 0 && s < n);
              Alcotest.(check bool) "succ lists node as pred" true
                (List.mem node.Lint.Cfg.n_id
                   (Lint.Cfg.preds g s)))
            node.Lint.Cfg.n_succ)
        g.Lint.Cfg.c_nodes;
      Alcotest.(check bool) "exit has no successors" true
        (Lint.Cfg.succs g g.Lint.Cfg.c_exit = []))
    [
      "x := 1;";
      "if c then x := 1; else x := 2; end if;";
      "while i < 3 do i := i + 1; end while;";
      "for i := 0 to 3 do acc := acc + i; end for;";
      "wait until go = true; call p(1, out_v);";
    ]

(* --- interval lattice --------------------------------------------------- *)

module I = Lint.Dataflow.Interval

let itv lo hi = { I.lo; hi }

let test_interval_eval () =
  let env = I.env_set "x" (itv 2 5) I.env_empty in
  Alcotest.(check string) "x+3" "[5,8]"
    (I.itv_to_string (I.eval env (Binop (Add, Ref "x", Const (VInt 3)))));
  Alcotest.(check string) "x*2" "[4,10]"
    (I.itv_to_string (I.eval env (Binop (Mul, Ref "x", Const (VInt 2)))));
  Alcotest.(check string) "mod bounds" "[-4,4]"
    (I.itv_to_string (I.eval env (Binop (Mod, Ref "y", Const (VInt 5)))));
  Alcotest.(check bool) "x < 10 definitely true" true
    (I.definitely_true (I.eval env (Binop (Lt, Ref "x", Const (VInt 10)))));
  Alcotest.(check bool) "x > 7 definitely false" true
    (I.definitely_false (I.eval env (Binop (Gt, Ref "x", Const (VInt 7)))))

let test_interval_assume () =
  let env = I.env_set "x" (itv 2 5) I.env_empty in
  (match I.assume env (Binop (Le, Ref "x", Const (VInt 4))) true with
  | Some env' ->
    Alcotest.(check string) "x <= 4 narrows" "[2,4]"
      (I.itv_to_string (I.env_find "x" env'))
  | None -> Alcotest.fail "feasible assumption rejected");
  Alcotest.(check bool) "x = 7 infeasible" true
    (I.assume env (Binop (Eq, Ref "x", Const (VInt 7))) true = None);
  (match I.assume env (Binop (Eq, Ref "x", Const (VInt 3))) false with
  | Some env' ->
    (* non-convex complement of an interior point: env unchanged *)
    Alcotest.(check string) "x <> 3 interior" "[2,5]"
      (I.itv_to_string (I.env_find "x" env'))
  | None -> Alcotest.fail "x <> 3 must stay feasible")

(* A disequality is non-convex in general, but at the endpoints it still
   sharpens: excluding the only remaining value is infeasible, and
   excluding an endpoint shaves it off. *)
let test_interval_assume_disequality () =
  let check_env env name cond outcome expected =
    match (I.assume env cond outcome, expected) with
    | Some env', Some itv ->
      Alcotest.(check string) name itv
        (I.itv_to_string (I.env_find "x" env'))
    | None, None -> ()
    | Some _, None -> Alcotest.failf "%s: infeasible assumption accepted" name
    | None, Some _ -> Alcotest.failf "%s: feasible assumption rejected" name
  in
  let wide = I.env_set "x" (itv 2 5) I.env_empty in
  let single = I.env_set "x" (I.const 4) I.env_empty in
  let neq k = Binop (Neq, Ref "x", Const (VInt k)) in
  let eq k = Binop (Eq, Ref "x", Const (VInt k)) in
  check_env single "x:[4,4], x <> 4 is bottom" (neq 4) true None;
  check_env single "x:[4,4], not (x = 4) is bottom" (eq 4) false None;
  check_env single "x:[4,4], x <> 5 keeps x" (neq 5) true (Some "[4,4]");
  check_env wide "x:[2,5], x <> 2 shaves lo" (neq 2) true (Some "[3,5]");
  check_env wide "x:[2,5], x <> 5 shaves hi" (neq 5) true (Some "[2,4]");
  check_env wide "x:[2,5], not (x = 2) shaves lo" (eq 2) false (Some "[3,5]");
  check_env wide "x:[2,5], x <> 3 interior unchanged" (neq 3) true
    (Some "[2,5]");
  check_env wide "x:[2,5], x <> 9 outside unchanged" (neq 9) true
    (Some "[2,5]");
  (* the flipped-operand form goes through the same refinement *)
  check_env wide "x:[2,5], 5 <> x shaves hi"
    (Binop (Neq, Const (VInt 5), Ref "x")) true (Some "[2,4]");
  check_env single "x:[4,4], not (4 = x) is bottom"
    (Binop (Eq, Const (VInt 4), Ref "x")) false None

(* The false outcome of each inequality is the complement range: the
   negation of [x < k] keeps x = k (a loop's exit state), and the
   negation of [x <= k] starts at k + 1. *)
let test_interval_assume_negations () =
  let env = I.env_set "x" (itv 2 5) I.env_empty in
  let check name op k outcome expected =
    match I.assume env (Binop (op, Ref "x", Const (VInt k))) outcome with
    | Some env' ->
      Alcotest.(check string) name expected
        (I.itv_to_string (I.env_find "x" env'))
    | None -> Alcotest.failf "%s: feasible assumption rejected" name
  in
  check "x < 4" Lt 4 true "[2,3]";
  check "not (x < 4)" Lt 4 false "[4,5]";
  check "not (x <= 4)" Le 4 false "[5,5]";
  check "not (x > 3)" Gt 3 false "[2,3]";
  check "not (x >= 4)" Ge 4 false "[2,3]";
  check "x > 3" Gt 3 true "[4,5]";
  check "x >= 3" Ge 3 true "[3,5]"

let test_interval_bits () =
  Alcotest.(check (option int)) "20 needs 5 bits" (Some 5)
    (I.bits_needed (I.const 20));
  Alcotest.(check (option int)) "top unbounded" None (I.bits_needed I.top);
  Alcotest.(check (option int)) "negative magnitude counts" (Some 3)
    (I.bits_needed (itv (-7) 2))

let test_interval_widen () =
  let w = I.widen_itv (itv 0 3) (itv 0 4) in
  Alcotest.(check bool) "widening jumps the growing bound" true
    (w.I.hi > 1000 || w.I.hi = max_int)

(* --- fixpoint termination on loop-heavy specs --------------------------- *)

let loopy_src =
  "program loopy is\n\
  \  var i : int<8> := 0;\n\
  \  var j : int<8> := 0;\n\
  \  var a : int<8> := 0;\n\
  \  var b : int<8> := 0;\n\
  \  var acc : int<16> := 0;\n\
  \  behavior L : leaf is\n\
  \  begin\n\
  \    while i < 100 do\n\
  \      j := 0;\n\
  \      while j < 100 do\n\
  \        j := j + 1;\n\
  \        acc := acc + j;\n\
  \      end while;\n\
  \      i := i + 1;\n\
  \    end while;\n\
  \    for a := 0 to 9 do\n\
  \      for b := 0 to 9 do\n\
  \        acc := acc + a + b;\n\
  \      end for;\n\
  \    end for;\n\
  \    emit \"acc\" acc;\n\
  \  end behavior\n\
   end program"

let test_fixpoint_terminates () =
  let s = Lint.Flow.of_program (parse loopy_src) in
  match Lint.Flow.leaf s "L" with
  | None -> Alcotest.fail "no flow info for the leaf"
  | Some li ->
    let n = Lint.Cfg.size li.Lint.Flow.li_cfg in
    (* Widening caps each node's state changes, so the worklist drains
       in a small multiple of |nodes| * widen_after. *)
    let bound = 4 * n * Lint.Dataflow.widen_after in
    Alcotest.(check bool)
      (Printf.sprintf "iterations %d within %d" li.Lint.Flow.li_iterations
         bound)
      true
      (li.Lint.Flow.li_iterations <= bound);
    Array.iter
      (fun r -> Alcotest.(check bool) "every node reachable" true r)
      li.Lint.Flow.li_reach

(* Regression: "while x < N" leaves x = N exactly on the exit edge, so
   the post-loop code stays reachable under --flow (a mis-grouped
   negation once made the exit edge provably infeasible, suppressing
   diagnostics after the loop and flagging it unreachable/dead). *)
let loop_exit_src =
  "program loopexit is\n\
  \  var x : int<8> := 0;\n\
  \  var y : int<8> := 0;\n\
  \  behavior L : leaf is\n\
  \  begin\n\
  \    x := 0;\n\
  \    while x < 10 do\n\
  \      x := x + 1;\n\
  \    end while;\n\
  \    y := x;\n\
  \    emit \"y\" y;\n\
  \  end behavior\n\
   end program"

let test_loop_exit_feasible () =
  let p = parse loop_exit_src in
  let s = Lint.Flow.of_program p in
  (match Lint.Flow.leaf s "L" with
  | None -> Alcotest.fail "no flow info for the leaf"
  | Some li ->
    Array.iteri
      (fun i r ->
        Alcotest.(check bool) (Printf.sprintf "node %d reachable" i) true r)
      li.Lint.Flow.li_reach;
    Alcotest.(check int) "post-loop store is not dead" 0
      (List.length li.Lint.Flow.li_dead_stores));
  let live =
    List.filter
      (fun (d : Diagnostic.t) ->
        String.length d.Diagnostic.d_code >= 4
        && String.equal (String.sub d.Diagnostic.d_code 0 4) "LIVE")
      (Lint.Registry.run ~flow:true p)
  in
  Alcotest.(check int) "no liveness findings on the live post-loop code" 0
    (List.length live)

(* The summary cache returns the same analysis for the same program. *)
let test_flow_cache () =
  let p = parse loopy_src in
  let s1 = Lint.Flow.of_program p and s2 = Lint.Flow.of_program p in
  Alcotest.(check bool) "cached summary reused" true (s1 == s2)

(* --- the fixer on the seeded fixtures ----------------------------------- *)

let test_fixer_applies () =
  let p = fixture "lint_fixable.sc" in
  let r = Lint.Fixer.fix p in
  Alcotest.(check bool) "rewrites happened" true r.Lint.Fixer.x_changed;
  Alcotest.(check (list string)) "all three codes applied, in order"
    [ "WIDTH001"; "PROTO003"; "CONT001" ]
    (List.map (fun a -> a.Lint.Fixer.fx_code) r.Lint.Fixer.x_applied);
  Alcotest.(check int) "nothing refused" 0
    (List.length r.Lint.Fixer.x_refused);
  (* the printed source re-parses to the fixed program *)
  let reparsed = parse r.Lint.Fixer.x_source in
  Alcotest.(check bool) "source re-parses to the fixed program" true
    (equal_program reparsed r.Lint.Fixer.x_program);
  (* fixed codes are gone; so is the single-master CONT002 (the arbiter
     serves two contending masters, not one) *)
  let ds = Lint.Registry.run r.Lint.Fixer.x_program in
  List.iter
    (fun c ->
      Alcotest.(check int) (c ^ " clean after fix") 0
        (List.length (with_code c ds)))
    [ "WIDTH001"; "PROTO003"; "CONT001"; "CONT002" ];
  (* bit-identical behavior *)
  let v = Sim.Cosim.check ~original:p ~refined:r.Lint.Fixer.x_program () in
  Alcotest.(check bool) "cosimulates bit-identically" true
    v.Sim.Cosim.v_equivalent;
  (* idempotent *)
  let r2 = Lint.Fixer.fix r.Lint.Fixer.x_program in
  Alcotest.(check bool) "second fix is a no-op" false r2.Lint.Fixer.x_changed;
  Alcotest.(check string) "source stable" r.Lint.Fixer.x_source
    r2.Lint.Fixer.x_source

(* PROTO002: a completion flag nobody reads gains a passive observer
   server; the observer must not change the trace, and the re-lint must
   be clean of the code. *)
let proto2_src =
  "program proto2_demo is\n\
   signal done_flag : bool := false;\n\
   behavior TOP : par is begin\n\
   behavior A : leaf is var x : int<8> := 0; begin\n\
   x := 5; emit \"x\" x; done_flag <= true; end behavior;\n\
   behavior B : leaf is var y : int<8> := 0; begin\n\
   y := 2; emit \"y\" y; end behavior;\n\
   end behavior\n\
   end program"

let test_fixer_proto2 () =
  let p = parse proto2_src in
  Alcotest.(check int) "fixture trips PROTO002" 1
    (List.length (with_code "PROTO002" (Lint.Registry.run p)));
  let r = Lint.Fixer.fix ~codes:[ "PROTO002" ] p in
  Alcotest.(check bool) "rewrite happened" true r.Lint.Fixer.x_changed;
  (match r.Lint.Fixer.x_applied with
  | [ a ] ->
    Alcotest.(check string) "code" "PROTO002" a.Lint.Fixer.fx_code;
    Alcotest.(check string) "on the unobserved signal" "done_flag"
      a.Lint.Fixer.fx_loc
  | l -> Alcotest.failf "expected one application, got %d" (List.length l));
  Alcotest.(check int) "nothing refused" 0
    (List.length r.Lint.Fixer.x_refused);
  let fixed = r.Lint.Fixer.x_program in
  Alcotest.(check int) "PROTO002 clean after fix" 0
    (List.length (with_code "PROTO002" (Lint.Registry.run fixed)));
  (* the observer is a registered server, so completion is unaffected *)
  Alcotest.(check bool) "observer registered as server" true
    (List.exists
       (fun s -> String.length s >= 4 && String.sub s 0 4 = "OBS_")
       fixed.p_servers);
  let v = Sim.Cosim.check ~original:p ~refined:fixed () in
  Alcotest.(check bool) "cosimulates bit-identically" true
    v.Sim.Cosim.v_equivalent

(* PROTO002 on a deadlocking input: the equivalence gate cannot prove
   the observer harmless, so the fix is refused and the program left
   untouched. *)
let test_fixer_proto2_refuses_on_deadlock () =
  let p = fixture "lint_handshake.sc" in
  let r = Lint.Fixer.fix ~codes:[ "PROTO002" ] p in
  Alcotest.(check bool) "program untouched" false r.Lint.Fixer.x_changed;
  match r.Lint.Fixer.x_refused with
  | [ f ] ->
    Alcotest.(check string) "PROTO002 refused" "PROTO002" f.Lint.Fixer.fr_code;
    Alcotest.(check string) "on the unpaired start wire" "go_start"
      f.Lint.Fixer.fr_loc
  | l -> Alcotest.failf "expected one refusal, got %d" (List.length l)

let test_fixer_refuses_unsafe () =
  (* lint_arbiter.sc's two masters collide in one delta (the M2 write
     wins), so serializing them behind an arbiter would change the
     observable trace: the equivalence gate must refuse. *)
  let p = fixture "lint_arbiter.sc" in
  let r = Lint.Fixer.fix ~codes:[ "CONT001" ] p in
  Alcotest.(check bool) "program untouched" false r.Lint.Fixer.x_changed;
  (match r.Lint.Fixer.x_refused with
  | [ f ] ->
    Alcotest.(check string) "CONT001 refused" "CONT001" f.Lint.Fixer.fr_code;
    Alcotest.(check string) "on the bus" "b1_addr" f.Lint.Fixer.fr_loc;
    Alcotest.(check bool) "because equivalence failed" true
      (let m = f.Lint.Fixer.fr_reason in
       String.length m >= 10)
  | l -> Alcotest.failf "expected one refusal, got %d" (List.length l));
  Alcotest.(check int) "nothing applied" 0 (List.length r.Lint.Fixer.x_applied)

(* The poll hook stops a fix run before the first candidate's gate. *)
let test_fixer_cancels () =
  let p = fixture "lint_fixable.sc" in
  Alcotest.check_raises "poll cancels" Lint.Fixer.Cancelled (fun () ->
      ignore (Lint.Fixer.fix ~poll:(fun () -> true) p))

(* --- property: --fix output re-parses, re-lints clean, cosimulates ------ *)

let gen_cfg seed =
  {
    Workloads.Generator.default_config with
    Workloads.Generator.gen_seed = seed;
    gen_vars = 4;
    gen_leaves = 5;
    gen_stmts = 3;
  }

let prop_fix_semantics_preserving =
  QCheck.Test.make
    ~name:"fix of a seeded width defect re-parses, re-lints clean, cosimulates"
    ~count:10
    QCheck.(int_range 0 10_000)
    (fun seed ->
      let p = Workloads.Generator.program (gen_cfg seed) in
      match
        List.find_opt
          (fun (v : var_decl) ->
            match v.v_ty with TInt _ -> true | TBool | TArray _ -> false)
          p.p_vars
      with
      | None -> QCheck.assume_fail ()
      | Some victim ->
        (* Seed a WIDTH001 defect: store a value two bits too wide into
           the victim in every leaf. *)
        let big = Const (VInt (1 lsl (ty_width victim.v_ty + 2))) in
        let top =
          Behavior.map_leaf_stmts
            (fun ss -> Assign (victim.v_name, big) :: ss)
            p.p_top
        in
        let p = { p with p_top = top } in
        let r = Lint.Fixer.fix ~codes:[ "WIDTH001" ] p in
        let reparsed = Parser.program_of_string_exn r.Lint.Fixer.x_source in
        r.Lint.Fixer.x_changed
        && r.Lint.Fixer.x_refused = []
        && equal_program reparsed r.Lint.Fixer.x_program
        && (not
              (List.exists
                 (fun d -> String.equal d.Diagnostic.d_code "WIDTH001")
                 (Lint.Registry.run r.Lint.Fixer.x_program)))
        && (Sim.Cosim.check ~original:p ~refined:r.Lint.Fixer.x_program ())
             .Sim.Cosim.v_equivalent)

let () =
  Alcotest.run "dataflow"
    [
      ("cfg golden", cfg_goldens);
      ("cfg invariants", [ tc "well-formed" test_cfg_wellformed ]);
      ( "interval",
        [
          tc "eval" test_interval_eval;
          tc "assume" test_interval_assume;
          tc "assume negations" test_interval_assume_negations;
          tc "assume disequality" test_interval_assume_disequality;
          tc "bits" test_interval_bits;
          tc "widen" test_interval_widen;
        ] );
      ( "fixpoint",
        [
          tc "loop-heavy termination" test_fixpoint_terminates;
          tc "loop exit stays feasible" test_loop_exit_feasible;
          tc "summary cache" test_flow_cache;
        ] );
      ( "fixer",
        [
          tc "applies on fixable" test_fixer_applies;
          tc "synthesizes the missing handshake end" test_fixer_proto2;
          tc "refuses the observer on a deadlocking input"
            test_fixer_proto2_refuses_on_deadlock;
          tc "refuses unsafe" test_fixer_refuses_unsafe;
          tc "poll cancels" test_fixer_cancels;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [ prop_fix_semantics_preserving ] );
    ]
