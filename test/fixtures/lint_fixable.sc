program lint_fixable is
  signal go : bool := true;
  signal m1_done : bool := false;
  signal b1_start : bool := false;
  signal b1_done : bool := false;
  signal b1_wr : bool := false;
  signal b1_addr : int<4> := 0;
  signal b1_data : int<8> := 0;
  servers MEM;
  procedure MST_send_b1 (a : in int<4>; d : in int<8>) is
  begin
    b1_addr <= a;
    b1_data <= d;
    b1_wr <= true;
    b1_start <= true;
    wait until b1_done = true;
    b1_start <= false;
    b1_wr <= false;
    wait until b1_done = false;
  end procedure;
  behavior TOP : par is
  begin
    behavior M1 : leaf is
      var tally : int<2> := 0;
    begin
      wait until go = true;
      tally := 12;
      call MST_send_b1(0, tally);
      m1_done <= true;
    end behavior
    ;
    behavior M2 : leaf is
    begin
      wait until m1_done = true;
      call MST_send_b1(1, 7);
    end behavior
    ;
    behavior MEM : leaf is
      var s0 : int<8> := 0;
      var s1 : int<8> := 0;
    begin
      while true do
        wait until b1_start = true;
        if b1_wr = true and b1_addr = 0 then
          s0 := b1_data;
          emit "s0" s0;
          b1_done <= true;
          wait until b1_start = false;
          b1_done <= false;
        elsif b1_wr = true and b1_addr = 1 then
          s1 := b1_data;
          emit "s1" s1;
          b1_done <= true;
          wait until b1_start = false;
          b1_done <= false;
        else
          b1_done <= true;
          wait until b1_start = false;
          b1_done <= false;
        end if;
      end while;
    end behavior
    ;
  end behavior
end program
