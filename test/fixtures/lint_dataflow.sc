program lint_dataflow is
  var mode : int<4> := 0;
  var ghost : int<8>;
  var phantom : int<8>;
  var uninit : int<8>;
  var shared : int<8> := 0;
  var wide : int<8> := 0;
  var narrow : int<4> := 0;
  var clamped : int<4> := 0;
  var sink : int<8> := 0;
  behavior TOP : par is
  begin
    behavior WORK : leaf is
      var tmp : int<8> := 0;
      var y : int<8> := 0;
    begin
      if 1 = 2 then
        y := ghost;
      end if;
      if mode = 1 then
        y := phantom;
      end if;
      y := uninit;
      tmp := 1;
      tmp := 2;
      sink := tmp + y;
      narrow := 20;
      wide := 3;
      clamped := wide;
      emit "nc" narrow + clamped;
      if mode = 1 then
        shared := 5;
      end if;
    end behavior
    ;
    behavior READER : leaf is
      var r : int<8> := 0;
    begin
      r := shared;
      emit "r" r;
    end behavior
    ;
    behavior PHASES : seq is
    begin
      behavior P1 : leaf is
      begin
        skip;
      end behavior
      -> (mode = 1) P2;
      behavior P2 : leaf is
      begin
        emit "p2" 1;
      end behavior
      ;
    end behavior
    ;
  end behavior
end program
