program lint_race is
  var shared : int<8> := 0;
  var other : int<8> := 0;
  behavior TOP : par is
  begin
    behavior WRITER : leaf is
    begin
      shared := shared + 1;
      other := 2;
    end behavior
    ;
    behavior READER : leaf is
    begin
      emit "seen" shared;
    end behavior
    ;
  end behavior
end program
