program lint_handshake is
  signal go_start : bool := false;
  signal go_done : bool := false;
  servers WORKER;
  behavior TOP : par is
  begin
    behavior CTRL : leaf is
    begin
      go_start <= true;
      wait until go_done = true;
      go_start <= false;
      wait until go_done = false;
    end behavior
    ;
    behavior WORKER : leaf is
    begin
      skip;
    end behavior
    ;
  end behavior
end program
