(** Tests for the weak-memory layer: the {!Sim.Memord} port-ordering
    scheduler, the litmus shapes, and the suite runner.

    The two load-bearing claims: [sc] is byte-identical to not
    installing the ordering layer at all (the default path is
    untouched), and the two kernels classify every litmus point
    identically (the ordering layer cannot de-synchronize them). *)

open Helpers

let policies = [ Sim.Memord.Sc; Sim.Memord.Per_port_fifo; Sim.Memord.Relaxed 2 ]

(* --- Memord unit tests -------------------------------------------------- *)

let test_policy_parsing () =
  let ok s p =
    match Sim.Memord.policy_of_string s with
    | Ok q -> Alcotest.(check bool) s true (q = p)
    | Error e -> Alcotest.failf "%s rejected: %s" s e
  in
  ok "sc" Sim.Memord.Sc;
  ok "per-port-fifo" Sim.Memord.Per_port_fifo;
  ok "fifo" Sim.Memord.Per_port_fifo;
  ok "relaxed" (Sim.Memord.Relaxed Sim.Memord.default_window);
  ok "relaxed:4" (Sim.Memord.Relaxed 4);
  (match Sim.Memord.policy_of_string "relaxed:0" with
  | Ok _ -> Alcotest.fail "relaxed:0 accepted"
  | Error _ -> ());
  (match Sim.Memord.policy_of_string "total-store-order" with
  | Ok _ -> Alcotest.fail "unknown policy accepted"
  | Error _ -> ());
  (* round-trip through the report spelling *)
  List.iter
    (fun p ->
      match Sim.Memord.policy_of_string (Sim.Memord.policy_to_string p) with
      | Ok q -> Alcotest.(check bool) "round-trip" true (p = q)
      | Error e -> Alcotest.failf "round-trip rejected: %s" e)
    (Sim.Memord.Relaxed 5 :: policies)

let port_of_ab s =
  if String.length s >= 2 && String.sub s 0 2 = "a_" then Some "p0"
  else if String.length s >= 2 && String.sub s 0 2 = "b_" then Some "p1"
  else None

let test_sc_diverts_nothing () =
  let t = Sim.Memord.make ~policy:Sim.Memord.Sc ~seed:1 ~port_of:port_of_ab in
  Alcotest.(check bool) "nothing diverted" false
    (Sim.Memord.capture t ~delta:0 "a_x" (vint 1));
  Alcotest.(check bool) "no pending" false (Sim.Memord.pending t);
  Alcotest.(check int) "counter stays zero" 0 (Sim.Memord.diverted t)

let test_fifo_groups_release_atomically () =
  let t =
    Sim.Memord.make ~policy:Sim.Memord.Per_port_fifo ~seed:1
      ~port_of:port_of_ab
  in
  (* one two-update delta-group on port p0, plus an unowned update *)
  Alcotest.(check bool) "a_x diverted" true
    (Sim.Memord.capture t ~delta:3 "a_x" (vint 1));
  Alcotest.(check bool) "a_y diverted" true
    (Sim.Memord.capture t ~delta:3 "a_y" (vint 2));
  Alcotest.(check bool) "unowned passes through" false
    (Sim.Memord.capture t ~delta:3 "clock" (vint 9));
  Alcotest.(check bool) "pending" true (Sim.Memord.pending t);
  let batch = Sim.Memord.release t in
  Alcotest.(check (list (pair string value_testable)))
    "the whole delta-group releases together, in capture order"
    [ ("a_x", vint 1); ("a_y", vint 2) ]
    batch;
  Alcotest.(check bool) "drained" false (Sim.Memord.pending t)

(* Same-signal order survives every policy: two writes to one name
   release oldest-first even under relaxed, whatever the seed. *)
let test_relaxed_preserves_same_signal_order () =
  List.iter
    (fun seed ->
      let t =
        Sim.Memord.make ~policy:(Sim.Memord.Relaxed 4) ~seed
          ~port_of:port_of_ab
      in
      ignore (Sim.Memord.capture t ~delta:0 "a_x" (vint 1));
      ignore (Sim.Memord.capture t ~delta:1 "a_x" (vint 2));
      let rec drain acc =
        match Sim.Memord.release t with
        | [] -> List.rev acc
        | batch -> drain (List.rev_append batch acc)
      in
      let order =
        List.filter_map
          (fun (n, v) -> if n = "a_x" then Some v else None)
          (drain [])
      in
      Alcotest.(check (list value_testable))
        (Printf.sprintf "seed %d keeps per-location order" seed)
        [ vint 1; vint 2 ] order)
    [ 1; 2; 3; 4; 5; 6; 7; 8 ]

(* --- sc is byte-identical to no ordering layer at all ------------------- *)

let test_sc_is_identity () =
  List.iter
    (fun shape ->
      let p = shape.Litmus.Shape.sh_program in
      let config =
        { Sim.Engine.default_config with Sim.Engine.trace_signals = true }
      in
      let bare = Sim.Engine.run ~config p in
      let sc =
        Sim.Engine.run ~config
          ~ordering:
            (Sim.Memord.make ~policy:Sim.Memord.Sc ~seed:7
               ~port_of:(Litmus.Shape.port_of shape))
          p
      in
      Alcotest.(check bool)
        (shape.Litmus.Shape.sh_name ^ ": sc result bit-identical")
        true (bare = sc))
    (Litmus.Shape.all ())

(* --- determinism and kernel agreement across the matrix ----------------- *)

let test_kernels_agree_everywhere () =
  List.iter
    (fun shape ->
      List.iter
        (fun ordering ->
          List.iter
            (fun seed ->
              let label =
                Printf.sprintf "%s/%s/%d" shape.Litmus.Shape.sh_name
                  (Sim.Memord.policy_to_string ordering)
                  seed
              in
              let e = Litmus.Run.run ~kernel:`Engine ~ordering ~seed shape in
              let r =
                Litmus.Run.run ~kernel:`Reference ~ordering ~seed shape
              in
              Alcotest.(check string)
                (label ^ ": verdicts agree")
                (Litmus.Classify.to_string e.Litmus.Run.o_verdict)
                (Litmus.Classify.to_string r.Litmus.Run.o_verdict);
              Alcotest.(check bool)
                (label ^ ": observed vectors agree")
                true
                (e.Litmus.Run.o_observed = r.Litmus.Run.o_observed);
              (* replaying the same point is bit-identical *)
              let e2 = Litmus.Run.run ~kernel:`Engine ~ordering ~seed shape in
              Alcotest.(check bool)
                (label ^ ": replay deterministic")
                true
                (e.Litmus.Run.o_observed = e2.Litmus.Run.o_observed
                && e.Litmus.Run.o_verdict = e2.Litmus.Run.o_verdict))
            [ 1; 2; 3 ])
        policies)
    (Litmus.Shape.all ())

(* --- the suite report --------------------------------------------------- *)

let test_suite_invariants () =
  let config =
    { (Litmus.Suite.default_config ()) with Litmus.Suite.cf_seeds = 4 }
  in
  let report = Litmus.Suite.run config in
  Alcotest.(check int) "no forbidden outcome" 0
    report.Litmus.Suite.rp_forbidden;
  Alcotest.(check int) "no fault-free corruption" 0
    report.Litmus.Suite.rp_corruption;
  Alcotest.(check int) "no kernel mismatch" 0
    report.Litmus.Suite.rp_kernel_mismatches;
  Alcotest.(check bool) "weak outcomes observed under weak orderings" true
    (report.Litmus.Suite.rp_weak_allowed > 0);
  (* every weak-allowed entry sits under a weak ordering *)
  List.iter
    (fun en ->
      if en.Litmus.Suite.en_verdict = Litmus.Classify.Weak_allowed then
        Alcotest.(check bool)
          (en.Litmus.Suite.en_shape ^ " weak under a weak ordering")
          false
          (String.equal en.Litmus.Suite.en_ordering "sc"))
    report.Litmus.Suite.rp_entries;
  (* the hardened memory shape never corrupts, under any ordering *)
  List.iter
    (fun en ->
      if String.equal en.Litmus.Suite.en_shape "mem-tmr" then
        Alcotest.(check bool)
          (Printf.sprintf "mem-tmr clean under %s seed %d"
             en.Litmus.Suite.en_ordering en.Litmus.Suite.en_seed)
          true
          (en.Litmus.Suite.en_verdict = Litmus.Classify.Sc_consistent))
    report.Litmus.Suite.rp_entries;
  (* RACE003 names at least the unhardened shapes that went weak *)
  let races = Litmus.Suite.race_diagnostics report in
  Alcotest.(check bool) "RACE003 fired" true (races <> []);
  List.iter
    (fun d ->
      Alcotest.(check string) "the litmus race code" "RACE003"
        d.Spec.Diagnostic.d_code)
    races;
  (* byte-identical replay: what lets serve mirror the CLI *)
  let report' = Litmus.Suite.run config in
  Alcotest.(check string) "JSON replays bit-identically"
    (Litmus.Suite.to_json report)
    (Litmus.Suite.to_json report');
  Alcotest.(check string) "text replays bit-identically"
    (Litmus.Suite.to_text report)
    (Litmus.Suite.to_text report')

let test_suite_faults_classify () =
  let config =
    {
      Litmus.Suite.cf_shapes = [ Litmus.Shape.coherence () ];
      cf_orderings = [ Sim.Memord.Sc ];
      cf_seeds = 1;
      cf_faults = true;
      cf_backend = None;
    }
  in
  let report = Litmus.Suite.run config in
  let faulted =
    List.filter
      (fun en -> en.Litmus.Suite.en_fault <> None)
      report.Litmus.Suite.rp_entries
  in
  Alcotest.(check bool) "fault plans ran" true (faulted <> []);
  (* the canned bit flip drives an observed register out of domain *)
  Alcotest.(check bool) "a fault surfaces as corruption or deadlock" true
    (List.exists
       (fun en ->
         en.Litmus.Suite.en_verdict = Litmus.Classify.Corruption
         || en.Litmus.Suite.en_verdict = Litmus.Classify.Deadlock)
       faulted)

(* --- property: sc can never be classified weak -------------------------- *)

let prop_sc_never_weak =
  QCheck.Test.make ~count:40
    ~name:"under sc, every fault-free litmus run is sc-consistent"
    QCheck.(pair (int_range 0 5) (int_range 1 10_000))
    (fun (shape_idx, seed) ->
      let shapes = Litmus.Shape.all () in
      let shape = List.nth shapes (shape_idx mod List.length shapes) in
      let o =
        Litmus.Run.run ~kernel:`Engine ~ordering:Sim.Memord.Sc ~seed shape
      in
      o.Litmus.Run.o_verdict = Litmus.Classify.Sc_consistent)

let () =
  Alcotest.run "litmus"
    [
      ( "memord",
        [
          tc "policy parsing round-trips" test_policy_parsing;
          tc "sc diverts nothing" test_sc_diverts_nothing;
          tc "fifo delta-groups release atomically"
            test_fifo_groups_release_atomically;
          tc "relaxed preserves per-location order"
            test_relaxed_preserves_same_signal_order;
        ] );
      ( "kernels",
        [
          tc "sc ordering is the identity" test_sc_is_identity;
          tc "engine = reference across the matrix"
            test_kernels_agree_everywhere;
        ] );
      ( "suite",
        [
          tc "matrix invariants and replay" test_suite_invariants;
          tc "fault plans classify" test_suite_faults_classify;
        ] );
      ("properties", [ QCheck_alcotest.to_alcotest prop_sc_never_weak ]);
    ]
