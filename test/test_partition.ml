(** Tests for partitions, local/global classification, the cost function
    and the four automatic partitioners. *)

open Partitioning
open Helpers

let fig2 = Workloads.Smallspecs.fig2
let g2 = Agraph.Access_graph.of_program fig2
let medical_g = Workloads.Medical.graph

(* --- partition type ------------------------------------------------------ *)

let test_make_and_query () =
  let part = Workloads.Smallspecs.fig2_partition in
  Alcotest.(check int) "parts" 2 (Partition.n_parts part);
  Alcotest.(check (option int)) "B1" (Some 0) (Partition.part_of_behavior part "B1");
  Alcotest.(check (option int)) "B3" (Some 1) (Partition.part_of_behavior part "B3");
  Alcotest.(check (option int)) "v6" (Some 1) (Partition.part_of_variable part "v6");
  Alcotest.(check (option int)) "missing" None (Partition.part_of_behavior part "zz")

let test_members () =
  let part = Workloads.Smallspecs.fig2_partition in
  Alcotest.(check (list string)) "behaviors P0" [ "B1"; "B2" ]
    (Partition.behaviors_in part 0);
  Alcotest.(check (list string)) "vars P1" [ "v5"; "v6"; "v7" ]
    (Partition.variables_in part 1)

let test_make_errors () =
  let b = Partition.Obj_behavior "A" in
  Alcotest.check_raises "out of range"
    (Invalid_argument "Partition.make: A assigned to partition 3 of 2")
    (fun () -> ignore (Partition.make ~n_parts:2 [ (b, 3) ]));
  Alcotest.check_raises "duplicate"
    (Invalid_argument "Partition.make: duplicate object A") (fun () ->
      ignore (Partition.make ~n_parts:2 [ (b, 0); (b, 1) ]));
  Alcotest.check_raises "empty"
    (Invalid_argument "Partition.make: n_parts < 1") (fun () ->
      ignore (Partition.make ~n_parts:0 []))

let test_assign () =
  let part = Partition.make ~n_parts:2 [ (Partition.Obj_behavior "A", 0) ] in
  let part = Partition.assign part (Partition.Obj_behavior "A") 1 in
  Alcotest.(check (option int)) "moved" (Some 1)
    (Partition.part_of_behavior part "A")

let test_complete_for () =
  let empty = Partition.make ~n_parts:2 [] in
  (match Partition.complete_for g2 empty with
  | Ok () -> Alcotest.fail "expected missing objects"
  | Error msgs -> Alcotest.(check int) "4+7 missing" 11 (List.length msgs));
  match Partition.complete_for g2 Workloads.Smallspecs.fig2_partition with
  | Ok () -> ()
  | Error m -> Alcotest.failf "unexpected: %s" (String.concat ";" m)

(* --- classification ------------------------------------------------------ *)

let test_classify_fig2 () =
  let r = Classify.report g2 Workloads.Smallspecs.fig2_partition in
  Alcotest.(check (list string)) "locals" [ "v1"; "v2"; "v3"; "v6" ] r.Classify.locals;
  Alcotest.(check (list string)) "globals" [ "v4"; "v5"; "v7" ] r.Classify.globals;
  Alcotest.(check (list string)) "unaccessed" [] r.Classify.unaccessed

let test_classify_designs () =
  let counts d =
    let r =
      Classify.report medical_g d.Workloads.Designs.d_partition
    in
    (List.length r.Classify.locals, List.length r.Classify.globals)
  in
  Alcotest.(check (pair int int)) "Design1 balanced" (7, 7)
    (counts Workloads.Designs.design1);
  Alcotest.(check (pair int int)) "Design2 mostly local" (10, 4)
    (counts Workloads.Designs.design2);
  Alcotest.(check (pair int int)) "Design3 mostly global" (4, 10)
    (counts Workloads.Designs.design3)

let test_classify_single_partition () =
  (* With everything on one component, every variable is local. *)
  let part = Partition.of_graph g2 ~n_parts:1 (fun _ -> 0) in
  let r = Classify.report g2 part in
  Alcotest.(check int) "all local" 7 (List.length r.Classify.locals);
  Alcotest.(check int) "none global" 0 (List.length r.Classify.globals)

let test_classify_variable_away_from_users () =
  (* A variable homed away from its only users is global. *)
  let part =
    Partition.of_graph g2 ~n_parts:2 (fun o ->
        match o with
        | Partition.Obj_variable "v6" -> 0 (* users B3 B4 live on 1 *)
        | Partition.Obj_behavior b -> if List.mem b [ "B3"; "B4" ] then 1 else 0
        | Partition.Obj_variable _ -> 0)
  in
  Alcotest.(check bool) "v6 global" true
    (Classify.classify g2 part "v6" = Classify.Global)

let test_ratio () =
  let r =
    { Classify.locals = [ "a"; "b"; "c" ]; globals = [ "d" ]; unaccessed = [] }
  in
  Alcotest.(check (float 1e-9)) "3/1" 3.0 (Classify.ratio r)

(* --- cost ---------------------------------------------------------------- *)

let test_comm_bits_zero_when_together () =
  let part = Partition.of_graph g2 ~n_parts:2 (fun _ -> 0) in
  Alcotest.(check int) "no traffic" 0 (Cost.comm_bits g2 part)

let test_comm_bits_counts_cross_edges () =
  let part = Workloads.Smallspecs.fig2_partition in
  let expected =
    List.fold_left
      (fun acc (e : Agraph.Access_graph.data_edge) ->
        let bp =
          Option.get (Partition.part_of_behavior part e.Agraph.Access_graph.de_behavior)
        in
        let vp =
          Option.get (Partition.part_of_variable part e.Agraph.Access_graph.de_variable)
        in
        if bp <> vp then acc + Agraph.Access_graph.edge_bits e else acc)
      0 g2.Agraph.Access_graph.g_data
  in
  Alcotest.(check int) "matches definition" expected (Cost.comm_bits g2 part);
  Alcotest.(check bool) "positive" true (expected > 0)

let test_cost_total_monotone_in_comm () =
  (* The all-on-one-side partition has zero comm but high imbalance; the
     weights trade them off. *)
  let together = Partition.of_graph g2 ~n_parts:2 (fun _ -> 0) in
  let split = Workloads.Smallspecs.fig2_partition in
  let w = { Cost.w_comm = 1.0; w_balance = 0.0 } in
  Alcotest.(check bool) "comm-only prefers together" true
    (Cost.total ~weights:w g2 together < Cost.total ~weights:w g2 split);
  let w = { Cost.w_comm = 0.0; w_balance = 1.0 } in
  Alcotest.(check bool) "balance-only prefers split" true
    (Cost.total ~weights:w g2 split < Cost.total ~weights:w g2 together)

(* --- rng ------------------------------------------------------------------ *)

let test_rng_determinism () =
  let a = Rng.create 7 and b = Rng.create 7 in
  let seq r = List.init 20 (fun _ -> Rng.int r 1000) in
  Alcotest.(check (list int)) "same seed, same stream" (seq a) (seq b);
  let c = Rng.create 8 in
  Alcotest.(check bool) "different seed differs" true (seq (Rng.create 7) <> seq c)

let test_rng_bounds () =
  let r = Rng.create 3 in
  for _ = 1 to 1000 do
    let n = Rng.int r 7 in
    if n < 0 || n >= 7 then Alcotest.failf "out of bounds: %d" n
  done;
  for _ = 1 to 1000 do
    let f = Rng.float r in
    if f < 0.0 || f >= 1.0 then Alcotest.failf "float out of bounds: %f" f
  done

let test_rng_shuffle_permutes () =
  let r = Rng.create 11 in
  let xs = List.init 30 Fun.id in
  let ys = Rng.shuffle r xs in
  Alcotest.(check (list int)) "same multiset" xs (List.sort compare ys)

(* --- partitioners --------------------------------------------------------- *)

let complete_and_valid g part =
  match Partition.complete_for g part with
  | Ok () -> true
  | Error _ -> false

let test_greedy_complete () =
  List.iter
    (fun n ->
      let part = Greedy.run medical_g ~n_parts:n in
      Alcotest.(check bool)
        (Printf.sprintf "complete p=%d" n)
        true
        (complete_and_valid medical_g part))
    [ 1; 2; 3; 4 ]

let test_kl_improves_or_keeps () =
  let start = Greedy.run medical_g ~n_parts:2 in
  let improved = Kl.run medical_g start in
  Alcotest.(check bool) "no worse" true
    (Cost.total medical_g improved <= Cost.total medical_g start);
  Alcotest.(check bool) "complete" true (complete_and_valid medical_g improved)

let test_annealing_deterministic () =
  let a = Annealing.run ~config:{ Annealing.default_config with steps = 300 } medical_g ~n_parts:2 in
  let b = Annealing.run ~config:{ Annealing.default_config with steps = 300 } medical_g ~n_parts:2 in
  Alcotest.(check (list (pair string int)))
    "same result for same seed"
    (List.map (fun (o, i) -> (Partition.obj_name o, i)) (Partition.objects a))
    (List.map (fun (o, i) -> (Partition.obj_name o, i)) (Partition.objects b))

let test_annealing_complete () =
  let part =
    Annealing.run ~config:{ Annealing.default_config with steps = 300 }
      medical_g ~n_parts:3
  in
  Alcotest.(check bool) "complete" true (complete_and_valid medical_g part)

let test_clustering_complete () =
  List.iter
    (fun n ->
      let part = Clustering.run medical_g ~n_parts:n in
      Alcotest.(check bool)
        (Printf.sprintf "complete p=%d" n)
        true
        (complete_and_valid medical_g part))
    [ 2; 3; 5 ]

let test_clustering_groups_affine_objects () =
  (* In fig2, v6 is used only by B3 and B4: clustering must put v6 with at
     least one of them. *)
  let part = Clustering.run g2 ~n_parts:2 in
  let v6 = Option.get (Partition.part_of_variable part "v6") in
  let b3 = Option.get (Partition.part_of_behavior part "B3") in
  let b4 = Option.get (Partition.part_of_behavior part "B4") in
  Alcotest.(check bool) "affinity respected" true (v6 = b3 || v6 = b4)

let test_partitioners_beat_random_on_comm () =
  (* Greedy+KL should not lose to a random assignment on communication. *)
  let random = Workloads.Generator.random_partition ~seed:99 medical_g ~n_parts:2 in
  let smart = Kl.run_from_scratch medical_g ~n_parts:2 in
  Alcotest.(check bool) "smart <= random comm" true
    (Cost.comm_bits medical_g smart <= Cost.comm_bits medical_g random)

let test_design_search_deterministic () =
  let objects bias seed =
    let part = Design_search.run ~seed ~steps:1500 medical_g ~n_parts:2 ~bias in
    List.map (fun (o, i) -> (Partition.obj_name o, i)) (Partition.objects part)
  in
  List.iter
    (fun bias ->
      Alcotest.(check (list (pair string int)))
        "same seed, same partition"
        (objects bias 5) (objects bias 5))
    [ Design_search.Balanced; Design_search.Mostly_local;
      Design_search.Mostly_global ]

let test_design_search_bias_moves_balance () =
  (* The biases must actually shift the local/global split, not just
     order it: Mostly_local yields a majority of locals, Mostly_global a
     majority of globals. *)
  let counts bias =
    let part = Design_search.run ~seed:5 ~steps:3000 medical_g ~n_parts:2 ~bias in
    let r = Classify.report medical_g part in
    (List.length r.Classify.locals, List.length r.Classify.globals)
  in
  let ll, lg = counts Design_search.Mostly_local in
  let gl, gg = counts Design_search.Mostly_global in
  Alcotest.(check bool)
    (Printf.sprintf "Mostly_local: %d local > %d global" ll lg)
    true (ll > lg);
  Alcotest.(check bool)
    (Printf.sprintf "Mostly_global: %d global > %d local" gg gl)
    true (gg > gl);
  (* And the searched partitions stay complete and usable. *)
  List.iter
    (fun bias ->
      Alcotest.(check bool) "complete" true
        (complete_and_valid medical_g
           (Design_search.run ~seed:9 ~steps:1500 medical_g ~n_parts:2 ~bias)))
    [ Design_search.Balanced; Design_search.Mostly_local;
      Design_search.Mostly_global ]

let test_design_search_biases () =
  let globals bias =
    let part = Design_search.run ~seed:5 ~steps:3000 medical_g ~n_parts:2 ~bias in
    let r = Classify.report medical_g part in
    List.length r.Classify.globals
  in
  let gl = globals Design_search.Mostly_local in
  let gb = globals Design_search.Balanced in
  let gg = globals Design_search.Mostly_global in
  Alcotest.(check bool)
    (Printf.sprintf "ordering %d <= %d <= %d" gl gb gg)
    true
    (gl <= gb && gb <= gg);
  Alcotest.(check bool) "spread" true (gl < gg)

let test_constrained_respects_limits () =
  (* Behaviors cost 10, variables 1; partition 0 can hold only three
     behaviors' worth.  A feasible split exists, so the result must be
     feasible. *)
  let cost _i = function
    | Partition.Obj_behavior _ -> 10
    | Partition.Obj_variable _ -> 1
  in
  let problem =
    { Constrained.pr_limits = [| 44; 1000 |]; pr_object_cost = cost }
  in
  let part = Constrained.run ~seed:7 medical_g ~problem ~n_parts:2 in
  Alcotest.(check bool) "complete" true (complete_and_valid medical_g part);
  Alcotest.(check bool) "feasible" true (Constrained.is_feasible problem part);
  Alcotest.(check bool) "P0 actually bounded" true
    (List.length (Partition.behaviors_in part 0) <= 4)

let test_constrained_minimizes_overrun_when_infeasible () =
  (* Total demand exceeds total capacity: the result cannot be feasible,
     but the overrun must not exceed the unavoidable excess by much. *)
  let cost _ _ = 10 in
  let problem =
    { Constrained.pr_limits = [| 50; 50 |]; pr_object_cost = cost }
  in
  let part = Constrained.run ~seed:7 medical_g ~problem ~n_parts:2 in
  let demand = 10 * (16 + 14) in
  let unavoidable = demand - 100 in
  Alcotest.(check bool) "over-run bounded" true
    (Constrained.overrun problem part <= unavoidable + 20)

let test_constrained_prefers_low_comm_among_feasible () =
  (* With generous limits the constraint is void, so the result should be
     at least as good as a random partition on communication. *)
  let cost _ _ = 1 in
  let problem =
    { Constrained.pr_limits = [| 1000; 1000 |]; pr_object_cost = cost }
  in
  let part = Constrained.run ~seed:3 ~steps:6000 medical_g ~problem ~n_parts:2 in
  let random = Workloads.Generator.random_partition ~seed:17 medical_g ~n_parts:2 in
  Alcotest.(check bool) "beats random comm" true
    (Cost.comm_bits medical_g part <= Cost.comm_bits medical_g random)

let test_constrained_rejects_bad_limits () =
  let problem = { Constrained.pr_limits = [| 1 |]; pr_object_cost = (fun _ _ -> 1) } in
  Alcotest.check_raises "arity"
    (Invalid_argument "Constrained.run: one limit per partition required")
    (fun () -> ignore (Constrained.run medical_g ~problem ~n_parts:2))

let prop_partitioners_complete =
  QCheck.Test.make ~count:30 ~name:"all partitioners yield complete partitions"
    QCheck.(make Gen.(pair (int_range 1 2000) (int_range 2 4)))
    (fun (seed, n_parts) ->
      let p =
        Workloads.Generator.program
          { Workloads.Generator.default_config with gen_seed = seed }
      in
      let g = Agraph.Access_graph.of_program p in
      List.for_all
        (fun part -> complete_and_valid g part)
        [
          Greedy.run g ~n_parts;
          Kl.run_from_scratch g ~n_parts;
          Annealing.run
            ~config:{ Annealing.default_config with steps = 200; seed }
            g ~n_parts;
          Clustering.run g ~n_parts;
        ])

let () =
  Alcotest.run "partitioning"
    [
      ( "partition",
        [
          tc "make/query" test_make_and_query;
          tc "members" test_members;
          tc "make errors" test_make_errors;
          tc "assign" test_assign;
          tc "complete_for" test_complete_for;
        ] );
      ( "classify",
        [
          tc "fig2" test_classify_fig2;
          tc "designs 7/7 10/4 4/10" test_classify_designs;
          tc "single partition" test_classify_single_partition;
          tc "var away from users" test_classify_variable_away_from_users;
          tc "ratio" test_ratio;
        ] );
      ( "cost",
        [
          tc "zero when together" test_comm_bits_zero_when_together;
          tc "counts cross edges" test_comm_bits_counts_cross_edges;
          tc "weight tradeoff" test_cost_total_monotone_in_comm;
        ] );
      ( "rng",
        [
          tc "determinism" test_rng_determinism;
          tc "bounds" test_rng_bounds;
          tc "shuffle permutes" test_rng_shuffle_permutes;
        ] );
      ( "algorithms",
        [
          tc "greedy complete" test_greedy_complete;
          tc "kl improves" test_kl_improves_or_keeps;
          tc "annealing deterministic" test_annealing_deterministic;
          tc "annealing complete" test_annealing_complete;
          tc "clustering complete" test_clustering_complete;
          tc "clustering affinity" test_clustering_groups_affine_objects;
          tc "smart beats random" test_partitioners_beat_random_on_comm;
          tc "design search biases" test_design_search_biases;
          tc "design search deterministic" test_design_search_deterministic;
          tc "design search moves balance" test_design_search_bias_moves_balance;
          tc "constrained: feasible" test_constrained_respects_limits;
          tc "constrained: infeasible" test_constrained_minimizes_overrun_when_infeasible;
          tc "constrained: low comm" test_constrained_prefers_low_comm_among_feasible;
          tc "constrained: bad limits" test_constrained_rejects_bad_limits;
          QCheck_alcotest.to_alcotest prop_partitioners_complete;
        ] );
    ]
