(** The bytecode compiler and register VM in isolation.

    Golden tests pin the instruction listing {!Sim.Compile} produces for
    each statement shape — including the fused operand forms
    (cell/const operands baked into [binop], constant stores, the
    signal-equality wait fast path) that the optimizer relies on.  A
    qcheck property then checks the compiled condition evaluator
    against {!Spec.Expr.eval} on generated expressions, values and
    errors alike, with division and modulo by zero in range. *)

open Helpers

let int_var name = { Spec.Ast.v_name = name; v_ty = Spec.Ast.TInt 16; v_init = None }
let bool_var name = { Spec.Ast.v_name = name; v_ty = Spec.Ast.TBool; v_init = None }

let frame () =
  Sim.Env.make ~owner:"L"
    [
      int_var "x";
      int_var "y";
      bool_var "p";
      { Spec.Ast.v_name = "a"; v_ty = Spec.Ast.TArray (8, 4); v_init = None };
    ]

let signals () =
  Sim.Sigtable.make
    [
      { Spec.Ast.s_name = "go"; s_ty = Spec.Ast.TBool; s_init = None };
      { Spec.Ast.s_name = "s"; s_ty = Spec.Ast.TInt 16; s_init = Some (Spec.Ast.VInt 3) };
    ]

let procs =
  [
    {
      Spec.Ast.prc_name = "dbl";
      prc_params =
        [
          { Spec.Ast.prm_name = "v"; prm_mode = Spec.Ast.Mode_in; prm_ty = Spec.Ast.TInt 16 };
          { Spec.Ast.prm_name = "r"; prm_mode = Spec.Ast.Mode_out; prm_ty = Spec.Ast.TInt 16 };
        ];
      prc_vars = [];
      prc_body = Spec.Parser.stmts_of_string_exn "r := v + v;";
    };
  ]

let listing ?(epilogue = `Halt) src =
  Sim.Opcode.to_string
    (Sim.Compile.body ~owner:"L" ~frame:(frame ()) ~signals:(signals ())
       ~procs ~epilogue
       (Spec.Parser.stmts_of_string_exn src))

let cond_listing src =
  Sim.Opcode.to_string
    (Sim.Compile.cond ~frame:(frame ()) ~signals:(signals ())
       (Spec.Parser.expr_of_string_exn src))

let golden label expected actual () = Alcotest.(check string) label expected actual

(* Statement bodies.  The [*] column marks charging instructions — the
   ones that consume an interpreter step, mirroring the tree-walker's
   step accounting exactly. *)

let body_goldens =
  [
    ( "assign constant folds to a constant store",
      "x := 3;",
      "  0  store      x <- 3  *\n\
      \  1  charge  *\n\
      \  2  halt\n" );
    ( "cell+const operand fuses into one binop",
      "x := x + 1;",
      "  0  binop      r0 <- x + 1\n\
      \  1  store      x <- r0  *\n\
      \  2  charge  *\n\
      \  3  halt\n" );
    ( "two cells load then combine",
      "x := x + y;",
      "  0  load_cell  r1 <- y\n\
      \  1  load_cell  r0 <- x\n\
      \  2  binop      r0 <- r0 + r1\n\
      \  3  store      x <- r0  *\n\
      \  4  charge  *\n\
      \  5  halt\n" );
    ( "signal operand fuses by interned id",
      "x := s + 2;",
      "  0  binop      r0 <- s#1 + 2\n\
      \  1  store      x <- r0  *\n\
      \  2  charge  *\n\
      \  3  halt\n" );
    ( "signal assignment schedules at commit",
      "s <= x * 2;",
      "  0  binop      r0 <- x * 2\n\
      \  1  store_sig  s#1 <- r0  *\n\
      \  2  charge  *\n\
      \  3  halt\n" );
    ( "if/else branches join on end_jmp",
      "if x = 0 then x := 1; else x := 2; end if;",
      "  0  binop      r0 <- x = 0\n\
      \  1  if_jmp     r0 -> 5  *\n\
      \  2  charge  *\n\
      \  3  store      x <- 2  *\n\
      \  4  end_jmp    7  *\n\
      \  5  store      x <- 1  *\n\
      \  6  end_jmp    7  *\n\
      \  7  charge  *\n\
      \  8  halt\n" );
    ( "while retests its condition in place",
      "while x < 4 do x := x + 1; end while;",
      "  0  charge  *\n\
      \  1  binop      r0 <- x < 4\n\
      \  2  while_jmp  r0 exit 6  *\n\
      \  3  binop      r0 <- x + 1\n\
      \  4  store      x <- r0  *\n\
      \  5  end_jmp    1  *\n\
      \  6  charge  *\n\
      \  7  halt\n" );
    ( "for keeps bounds in registers",
      "for y := 0 to 3 do x := x + y; end for;",
      "  0  const      r0 <- 0\n\
      \  1  const      r1 <- 3\n\
      \  2  charge  *\n\
      \  3  for_test   r0 <= r1 exit 9  *\n\
      \  4  load_cell  r3 <- y\n\
      \  5  load_cell  r2 <- x\n\
      \  6  binop      r2 <- r2 + r3\n\
      \  7  store      x <- r2  *\n\
      \  8  for_end    r0++ -> 3  *\n\
      \  9  charge  *\n\
      \ 10  halt\n" );
    ( "signal-equality wait takes the fast opcode",
      "wait until go = true;",
      "  0  charge  *\n\
      \  1  wait_sig   #0 = true  *\n\
      \  2  charge  *\n\
      \  3  halt\n" );
    ( "general wait re-evaluates its condition",
      "wait until x + s > 3;",
      "  0  charge  *\n\
      \  1  load_sig   r1 <- s#1\n\
      \  2  load_cell  r0 <- x\n\
      \  3  binop      r0 <- r0 + r1\n\
      \  4  binop      r0 <- r0 > 3\n\
      \  5  wait       r0  *\n\
      \  6  charge  *\n\
      \  7  halt\n" );
    ( "wait on a constant false never wakes",
      "wait until false;",
      "  0  charge  *\n\
      \  1  wait_never  *\n\
      \  2  charge  *\n\
      \  3  halt\n" );
    ( "emit evaluates once then records",
      "emit \"out\" x;",
      "  0  load_cell  r0 <- x\n\
      \  1  emit       \"out\" r0  *\n\
      \  2  charge  *\n\
      \  3  halt\n" );
    ( "constant emit skips the load",
      "emit \"t\" 7;",
      "  0  emit       \"t\" 7  *\n\
      \  1  charge  *\n\
      \  2  halt\n" );
    ( "array element store and load",
      "a[1] := x; x := a[0];",
      "  0  const      r0 <- 1\n\
      \  1  load_cell  r1 <- x\n\
      \  2  store_arr  a[r0] <- r1  *\n\
      \  3  const      r0 <- 0\n\
      \  4  load_arr   r0 <- a[r0]\n\
      \  5  store      x <- r0  *\n\
      \  6  charge  *\n\
      \  7  halt\n" );
    ( "call stages in-args then transfers",
      "call dbl(x + 1, out x);",
      "  0  binop      r0 <- x + 1\n\
      \  1  call       dbl/2  *\n\
      \  2  charge  *\n\
      \  3  halt\n" );
    ( "skip charges like the tree-walker",
      "skip;",
      "  0  charge  *\n\
      \  1  charge  *\n\
      \  2  halt\n" );
  ]

let test_body_goldens () =
  List.iter (fun (label, src, expected) -> golden label expected (listing src) ())
    body_goldens

let test_procedure_epilogue () =
  (* A procedure body pops its activation instead of halting the thread. *)
  golden "ret epilogue"
    "  0  store      x <- 1  *\n\
    \  1  charge  *\n\
    \  2  ret  *\n"
    (listing ~epilogue:`Ret "x := 1;") ()

let test_cond_goldens () =
  golden "constant condition folds completely"
    "  0  const      r0 <- true\n\
    \  1  yield      r0\n"
    (cond_listing "1 + 2 = 3") ();
  golden "signal compare fuses the signal read"
    "  0  binop      r0 <- s#1 > 3\n\
    \  1  yield      r0\n"
    (cond_listing "s > 3") ();
  golden "division stays a runtime op"
    "  0  load_cell  r1 <- y\n\
    \  1  load_cell  r0 <- x\n\
    \  2  binop      r0 <- r0 / r1\n\
    \  3  binop      r0 <- r0 = 2\n\
    \  4  yield      r0\n"
    (cond_listing "x / y = 2") ()

(* --- compiled condition = Expr.eval, on generated expressions ---------- *)

(* One evaluation environment shared by both sides: frame cells for
   x/y/p, interned signals s/go.  The compiled side bakes the cell refs
   and signal ids in, so the cells are mutated in place per case. *)
let cond_env () =
  let fr = frame () in
  let sg = signals () in
  let cx =
    {
      Sim.Interp.cx_signals = sg;
      cx_trace = Sim.Trace.make ();
      cx_procs = [];
      cx_delta = 0;
    }
  in
  let cell name =
    match Sim.Env.find_cell fr name with
    | Some c -> c
    | None -> Alcotest.failf "no cell %s" name
  in
  (fr, sg, cx, cell "x", cell "y", cell "p")

let eval_compiled cx fr sg e =
  let cp = Sim.Vm.compile_cond ~frame:fr ~signals:sg e in
  ignore sg;
  Sim.Vm.eval_cond cx cp

let eval_tree fr sg e =
  Spec.Expr.eval
    ~lookup:(fun name ->
      match Sim.Env.lookup fr name with
      | Some v -> Some v
      | None -> Sim.Sigtable.read sg name)
    e

let outcome f =
  match f () with
  | v -> Ok v
  | exception Spec.Expr.Eval_error m -> Error m

let outcome_testable =
  Alcotest.(result value_testable string)

let check_cond_agree label fr sg cx e =
  Alcotest.check outcome_testable label
    (outcome (fun () -> eval_tree fr sg e))
    (outcome (fun () -> eval_compiled cx fr sg e))

let test_div_mod_edges () =
  let fr, sg, cx, x, y, _ = cond_env () in
  let e = Spec.Parser.expr_of_string_exn in
  List.iter
    (fun (xv, yv) ->
      x := Spec.Ast.VInt xv;
      y := Spec.Ast.VInt yv;
      List.iter
        (fun src ->
          check_cond_agree
            (Printf.sprintf "%s with x=%d y=%d" src xv yv)
            fr sg cx (e src))
        [ "x / y"; "x % y"; "x / y = 2 or y = 0"; "(0 - x) % y" ])
    [ (7, 2); (-7, 2); (7, -2); (-7, -2); (7, 0); (0, 3); (-1, 1) ]

let gen_expr =
  let open QCheck.Gen in
  let leaf =
    oneof
      [
        map (fun i -> Spec.Ast.Const (Spec.Ast.VInt i)) (int_range (-3) 3);
        map (fun b -> Spec.Ast.Const (Spec.Ast.VBool b)) bool;
        oneofl
          [
            Spec.Ast.Ref "x";
            Spec.Ast.Ref "y";
            Spec.Ast.Ref "p";
            Spec.Ast.Ref "s";
            Spec.Ast.Ref "go";
          ];
      ]
  in
  let ops =
    [
      Spec.Ast.Add; Sub; Mul; Div; Mod; Eq; Neq; Lt; Le; Gt; Ge; And; Or;
    ]
  in
  sized
  @@ fix (fun self n ->
         if n <= 0 then leaf
         else
           frequency
             [
               (1, leaf);
               ( 4,
                 map3
                   (fun op a b -> Spec.Ast.Binop (op, a, b))
                   (oneofl ops) (self (n / 2)) (self (n / 2)) );
               ( 1,
                 map2
                   (fun op a -> Spec.Ast.Unop (op, a))
                   (oneofl [ Spec.Ast.Neg; Spec.Ast.Not ])
                   (self (n - 1)) );
             ])

let prop_cond_agrees =
  QCheck.Test.make ~count:500
    ~name:"compiled condition = Expr.eval (values and errors)"
    QCheck.(make ~print:(Format.asprintf "%a" Spec.Expr.pp) gen_expr)
    (fun e ->
      let fr, sg, cx, x, y, p = cond_env () in
      List.for_all
        (fun (xv, yv, pv) ->
          x := Spec.Ast.VInt xv;
          y := Spec.Ast.VInt yv;
          p := Spec.Ast.VBool pv;
          outcome (fun () -> eval_tree fr sg e)
          = outcome (fun () -> eval_compiled cx fr sg e))
        [ (5, 2, true); (-4, 0, false); (0, -1, true) ])

let () =
  Alcotest.run "vm"
    [
      ( "compile",
        [
          tc "statement listings" test_body_goldens;
          tc "procedure epilogue" test_procedure_epilogue;
          tc "condition listings" test_cond_goldens;
        ] );
      ("conditions", [ tc "div/mod edge cases" test_div_mod_edges ]);
      ("properties", [ QCheck_alcotest.to_alcotest prop_cond_agrees ]);
    ]
