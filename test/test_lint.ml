(** Tests for the static-analysis subsystem ([lib/lint]): the
    diagnostics framework, the five lint passes over the hand-seeded
    fixture specs, the migrated checker shims, and the acceptance
    property that every refined medical design lints clean at error
    severity. *)

open Spec
open Ast
open Helpers

let fixture name =
  let path = Filename.concat "fixtures" name in
  let ic = open_in_bin path in
  let s = really_input_string ic (in_channel_length ic) in
  close_in ic;
  Parser.program_of_string_exn s

let parse = Parser.program_of_string_exn

let contains hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.equal (String.sub hay i nn) needle || go (i + 1)) in
  nn = 0 || go 0

let codes ds = List.map (fun d -> d.Diagnostic.d_code) ds

let with_code c ds =
  List.filter (fun d -> String.equal d.Diagnostic.d_code c) ds

let has_code c ds = with_code c ds <> []

(* --- diagnostics framework --------------------------------------------- *)

let test_diagnostic_order () =
  let d ~code ~sev ?(path = []) msg =
    Diagnostic.make ~code ~severity:sev ~pass:"test" ~path msg
  in
  let ds =
    [
      d ~code:"ZED001" ~sev:Diagnostic.Warning "w";
      d ~code:"ABC002" ~sev:Diagnostic.Error "b";
      d ~code:"ABC001" ~sev:Diagnostic.Info "i";
      d ~code:"ABC001" ~sev:Diagnostic.Error ~path:[ "B" ] "a2";
      d ~code:"ABC001" ~sev:Diagnostic.Error ~path:[ "A" ] "a1";
      d ~code:"ABC001" ~sev:Diagnostic.Error ~path:[ "A" ] "a1";
    ]
  in
  let sorted = Diagnostic.sort ds in
  Alcotest.(check (list string))
    "severity first, then code, then location"
    [ "ABC001"; "ABC001"; "ABC002"; "ZED001"; "ABC001" ]
    (codes sorted);
  Alcotest.(check int) "duplicates collapsed" 5 (List.length sorted);
  Alcotest.(check string) "path breaks ties" "A"
    (Diagnostic.path_string (List.hd sorted))

let test_diagnostic_render () =
  let d =
    Diagnostic.make ~code:"RACE001" ~severity:Diagnostic.Error ~pass:"race"
      ~path:[ "TOP"; "B1" ] ~loc:"x" "variable x is racy"
  in
  let s = Diagnostic.to_string d in
  List.iter
    (fun frag ->
      Alcotest.(check bool) ("text has " ^ frag) true (contains s frag))
    [ "error"; "RACE001"; "TOP/B1"; "variable x is racy"; "at x" ];
  let j = Diagnostic.to_json d in
  List.iter
    (fun frag ->
      Alcotest.(check bool) ("json has " ^ frag) true (contains j frag))
    [
      {|"code":"RACE001"|};
      {|"severity":"error"|};
      {|"pass":"race"|};
      {|"loc":"x"|};
    ];
  Alcotest.(check bool) "json escaping" true
    (contains
       (Diagnostic.to_json
          (Diagnostic.make ~code:"X001" ~severity:Diagnostic.Info ~pass:"t"
             "a \"quoted\" thing"))
       {|a \"quoted\" thing|})

(* --- fixture specs: one seeded defect each ----------------------------- *)

let test_fixture_race () =
  let p = fixture "lint_race.sc" in
  Alcotest.(check bool) "input spec detected as pre-refinement" true
    (Lint.Registry.infer_phase p = Lint.Registry.Pre);
  let pre = Lint.Registry.run p in
  (match with_code "RACE001" pre with
  | [ d ] ->
    Alcotest.(check string) "on the shared variable" "shared"
      d.Diagnostic.d_loc;
    Alcotest.(check bool) "warning pre-refinement" true
      (d.Diagnostic.d_severity = Diagnostic.Warning)
  | ds -> Alcotest.failf "expected exactly one RACE001, got %d" (List.length ds));
  Alcotest.(check bool) "no errors pre-refinement" false
    (Diagnostic.has_errors pre);
  let post = Lint.Registry.run ~phase:Lint.Registry.Post p in
  (match with_code "RACE001" post with
  | [ d ] ->
    Alcotest.(check bool) "error post-refinement" true
      (d.Diagnostic.d_severity = Diagnostic.Error)
  | ds -> Alcotest.failf "expected exactly one RACE001, got %d" (List.length ds));
  (* [other] is written in a single branch and accessed nowhere else, so
     it must not be reported as a race. *)
  List.iter
    (fun d -> Alcotest.(check bool) "no race on other" false
        (String.equal d.Diagnostic.d_loc "other"))
    (with_code "RACE001" post)

let test_fixture_handshake () =
  let p = fixture "lint_handshake.sc" in
  Alcotest.(check bool) "refined shape detected as post-refinement" true
    (Lint.Registry.infer_phase p = Lint.Registry.Post);
  let ds = Lint.Registry.run p in
  (match with_code "PROTO002" ds with
  | [ d ] ->
    Alcotest.(check string) "start wire has no waiter" "go_start"
      d.Diagnostic.d_loc
  | l -> Alcotest.failf "expected one PROTO002, got %d" (List.length l));
  (match with_code "PROTO003" ds with
  | [ d ] ->
    Alcotest.(check string) "done wire has no driver" "go_done"
      d.Diagnostic.d_loc
  | l -> Alcotest.failf "expected one PROTO003, got %d" (List.length l));
  Alcotest.(check bool) "unpaired handshakes are errors post-refinement" true
    (List.for_all
       (fun d -> d.Diagnostic.d_severity = Diagnostic.Error)
       (with_code "PROTO002" ds @ with_code "PROTO003" ds))

let test_fixture_arbiter () =
  let p = fixture "lint_arbiter.sc" in
  let ds = Lint.Registry.run ~phase:Lint.Registry.Post p in
  (match with_code "CONT001" ds with
  | [ d ] ->
    Alcotest.(check string) "on the address wire" "b1_addr" d.Diagnostic.d_loc;
    List.iter
      (fun frag ->
        Alcotest.(check bool) (frag ^ " named in the message") true
          (contains d.Diagnostic.d_message frag))
      [ "M1"; "M2" ]
  | l -> Alcotest.failf "expected one CONT001, got %d" (List.length l));
  (* MEM decodes addresses 0 and 1, so the transactions themselves are
     conformant. *)
  Alcotest.(check bool) "served addresses raise no PROTO001" false
    (has_code "PROTO001" ds)

(* A master call whose constant address no slave decodes is PROTO001. *)
let test_unserved_address () =
  let p = fixture "lint_arbiter.sc" in
  let retarget = function
    | Call (f, Arg_expr _ :: rest) when String.equal f "MST_send_b1" ->
      Call (f, Arg_expr (Const (VInt 9)) :: rest)
    | s -> s
  in
  let top = Behavior.map_leaf_stmts (List.map retarget) p.p_top in
  let ds = Lint.Registry.run ~phase:Lint.Registry.Post { p with p_top = top } in
  let d1 = with_code "PROTO001" ds in
  Alcotest.(check bool) "unserved address flagged" true (d1 <> []);
  Alcotest.(check bool) "the stray address is named" true
    (List.exists (fun d -> contains d.Diagnostic.d_message "addresses 9") d1);
  Alcotest.(check bool) "PROTO001 is an error in any phase" true
    (List.for_all (fun d -> d.Diagnostic.d_severity = Diagnostic.Error) d1)

(* Masters that acquire a grant wire before the transaction are not
   contention: the arbiter rule must go quiet. *)
let test_grant_suppresses_contention () =
  let p = fixture "lint_arbiter.sc" in
  let acquire =
    [
      Signal_assign ("req", Const (VBool true));
      Wait_until (Binop (Eq, Ref "gnt", Const (VBool true)));
    ]
  in
  let top =
    Behavior.map_leaf_stmts
      (fun stmts ->
        let calls_bus =
          List.exists
            (function Call ("MST_send_b1", _) -> true | _ -> false)
            stmts
        in
        if calls_bus then acquire @ stmts else stmts)
      p.p_top
  in
  let sd name = { s_name = name; s_ty = TBool; s_init = Some (VBool false) } in
  let p' =
    { p with p_top = top; p_signals = p.p_signals @ [ sd "req"; sd "gnt" ] }
  in
  let ds = Lint.Registry.run ~phase:Lint.Registry.Post p' in
  Alcotest.(check bool) "grant holders are not flagged" false
    (has_code "CONT001" ds);
  (* Two contending regions: the single-master rule stays quiet too. *)
  Alcotest.(check bool) "contended grant is not overhead" false
    (has_code "CONT002" ds)

(* --- liveness and width passes over inline programs -------------------- *)

let live_src =
  "program live is\n\
  \  var dead : int<8> := 0;\n\
  \  var uninit : int<8>;\n\
  \  signal unused : bool := false;\n\
  \  behavior TOP : seq is\n\
  \  begin\n\
  \    behavior A : leaf is\n\
  \    begin\n\
  \      emit \"u\" uninit;\n\
  \    end behavior\n\
  \    -> complete;\n\
  \    behavior B : leaf is\n\
  \    begin\n\
  \      skip;\n\
  \    end behavior\n\
  \    ;\n\
  \  end behavior\n\
   end program"

let test_liveness_codes () =
  let ds = Lint.Registry.run ~phase:Lint.Registry.Pre (parse live_src) in
  let loc_of c =
    match with_code c ds with
    | [ d ] -> d.Diagnostic.d_loc
    | l -> Alcotest.failf "expected one %s, got %d" c (List.length l)
  in
  Alcotest.(check string) "LIVE001 on the untouched variable" "dead"
    (loc_of "LIVE001");
  Alcotest.(check string) "LIVE004 on the uninitialized read" "uninit"
    (loc_of "LIVE004");
  Alcotest.(check string) "LIVE002 on the unused signal" "unused"
    (loc_of "LIVE002");
  (match with_code "LIVE003" ds with
  | [ d ] ->
    Alcotest.(check string) "LIVE003 on the unreachable arm" "B"
      d.Diagnostic.d_loc;
    Alcotest.(check string) "inside its sequential parent" "TOP"
      (Diagnostic.path_string d)
  | l -> Alcotest.failf "expected one LIVE003, got %d" (List.length l));
  Alcotest.(check bool) "usage findings are warnings" false
    (Diagnostic.has_errors ds)

let width_src =
  "program widths is\n\
  \  var wide : int<16> := 0;\n\
  \  var narrow : int<8> := 0;\n\
  \  procedure take (a : in int<4>) is\n\
  \  begin\n\
  \    skip;\n\
  \  end procedure;\n\
  \  behavior MAIN : leaf is\n\
  \  begin\n\
  \    narrow := wide;\n\
  \    call take(wide);\n\
  \  end behavior\n\
   end program"

let test_width_codes () =
  let ds = Lint.Registry.run ~phase:Lint.Registry.Pre (parse width_src) in
  Alcotest.(check bool) "assignment narrowing flagged" true
    (List.exists
       (fun d -> contains d.Diagnostic.d_message "narrow")
       (with_code "WIDTH001" ds));
  Alcotest.(check bool) "call-transfer narrowing flagged" true
    (has_code "WIDTH002" ds);
  Alcotest.(check bool) "width findings are warnings in any phase" false
    (Diagnostic.has_errors (Lint.Registry.run ~phase:Lint.Registry.Post (parse width_src)))

(* --- flow-sensitive mode ------------------------------------------------ *)

let pairs ds = List.map (fun d -> (d.Diagnostic.d_code, d.Diagnostic.d_loc)) ds

(* The exact diagnostic sets on the seeded fixture, flow off vs on: the
   flow-sensitive passes must drop the unreachable/guard-dominated
   LIVE004s and the interval-provable WIDTH001 and RACE001 while keeping
   every true positive, and add the dead-store/unread-write findings. *)
let test_flow_off_exact () =
  let p = fixture "lint_dataflow.sc" in
  Alcotest.(check (list (pair string string)))
    "flow-insensitive diagnostics"
    [
      ("LIVE004", "ghost");
      ("LIVE004", "phantom");
      ("LIVE004", "uninit");
      ("RACE001", "shared");
      ("WIDTH001", "clamped");
      ("WIDTH001", "narrow");
    ]
    (pairs (Lint.Registry.run p))

let test_flow_on_exact () =
  let p = fixture "lint_dataflow.sc" in
  Alcotest.(check (list (pair string string)))
    "flow-sensitive diagnostics"
    [
      ("LIVE001", "ghost");
      ("LIVE001", "phantom");
      ("LIVE003", "P2");
      ("LIVE004", "uninit");
      ("LIVE005", "tmp");
      ("LIVE006", "sink");
      ("WIDTH001", "narrow");
    ]
    (pairs (Lint.Registry.run ~flow:true p))

(* --- single-master arbiter rule (CONT002) ------------------------------- *)

let solo_master_src =
  "program solo is\n\
  \  signal b1_start : bool := false;\n\
  \  signal b1_done : bool := false;\n\
  \  signal b1_wr : bool := false;\n\
  \  signal b1_addr : int<4> := 0;\n\
  \  signal b1_data : int<8> := 0;\n\
  \  signal arb_req : bool := false;\n\
  \  signal arb_gnt : bool := false;\n\
  \  servers MEM, ARB;\n\
  \  procedure MST_send_b1 (a : in int<4>; d : in int<8>) is\n\
  \  begin\n\
  \    b1_addr <= a;\n\
  \    b1_data <= d;\n\
  \    b1_wr <= true;\n\
  \    b1_start <= true;\n\
  \    wait until b1_done = true;\n\
  \    b1_start <= false;\n\
  \    b1_wr <= false;\n\
  \    wait until b1_done = false;\n\
  \  end procedure;\n\
  \  behavior TOP : par is\n\
  \  begin\n\
  \    behavior M1 : leaf is\n\
  \    begin\n\
  \      arb_req <= true;\n\
  \      wait until arb_gnt = true;\n\
  \      call MST_send_b1(0, 5);\n\
  \      arb_req <= false;\n\
  \      wait until arb_gnt = false;\n\
  \    end behavior\n\
  \    ;\n\
  \    behavior ARB : leaf is\n\
  \    begin\n\
  \      while true do\n\
  \        wait until arb_req = true;\n\
  \        arb_gnt <= true;\n\
  \        wait until arb_req = false;\n\
  \        arb_gnt <= false;\n\
  \      end while;\n\
  \    end behavior\n\
  \    ;\n\
  \    behavior MEM : leaf is\n\
  \      var s0 : int<8> := 0;\n\
  \    begin\n\
  \      while true do\n\
  \        wait until b1_start = true;\n\
  \        if b1_wr = true and b1_addr = 0 then\n\
  \          s0 := b1_data;\n\
  \          emit \"s0\" s0;\n\
  \        end if;\n\
  \        b1_done <= true;\n\
  \        wait until b1_start = false;\n\
  \        b1_done <= false;\n\
  \      end while;\n\
  \    end behavior\n\
  \    ;\n\
  \  end behavior\n\
   end program"

(* A lone master wrapping its transactions in a grant nobody contends
   for is flagged CONT002; strip the wrapper and the pass goes quiet. *)
let test_cont002_single_master () =
  let p = parse solo_master_src in
  let ds = Lint.Registry.run ~phase:Lint.Registry.Post p in
  (match with_code "CONT002" ds with
  | [ d ] ->
    Alcotest.(check string) "on the bus address" "b1_addr"
      d.Diagnostic.d_loc;
    Alcotest.(check bool) "a warning, not an error" true
      (d.Diagnostic.d_severity = Diagnostic.Warning);
    Alcotest.(check bool) "names the wrapping master" true
      (contains d.Diagnostic.d_message "M1 wraps its calls")
  | l -> Alcotest.failf "expected one CONT002, got %d" (List.length l));
  Alcotest.(check bool) "no CONT001 on a single region" false
    (has_code "CONT001" ds);
  (* Without the grant wrapper there is no overhead to report. *)
  let strip =
    List.filter (function
      | Signal_assign ("arb_req", _) -> false
      | Wait_until (Binop (Eq, Ref "arb_gnt", _)) -> false
      | _ -> true)
  in
  let bare = { p with p_top = Behavior.map_leaf_stmts strip p.p_top } in
  let ds' = Lint.Registry.run ~phase:Lint.Registry.Post bare in
  Alcotest.(check bool) "bare single master is clean of CONT002" false
    (has_code "CONT002" ds');
  Alcotest.(check bool) "and of CONT001" false (has_code "CONT001" ds')

(* --- registry ---------------------------------------------------------- *)

let test_code_table () =
  let table = Lint.Registry.code_table in
  let cs = List.map fst table in
  List.iter
    (fun c ->
      Alcotest.(check bool) (c ^ " documented") true (List.mem c cs))
    [
      "RACE001"; "RACE002"; "PROTO001"; "PROTO002"; "PROTO003"; "LIVE001";
      "LIVE002"; "LIVE003"; "LIVE004"; "LIVE005"; "LIVE006"; "CONT001";
      "CONT002"; "WIDTH001"; "WIDTH002"; "TYPE001"; "REF001"; "NAME001";
    ];
  Alcotest.(check (list string)) "table sorted and duplicate-free"
    (List.sort_uniq String.compare cs) cs

let test_run_sorted () =
  List.iter
    (fun name ->
      let ds = Lint.Registry.run ~phase:Lint.Registry.Post (fixture name) in
      let rec ordered = function
        | a :: (b :: _ as rest) ->
          Diagnostic.compare a b <= 0 && ordered rest
        | _ -> true
      in
      Alcotest.(check bool) (name ^ " output in stable order") true
        (ordered ds))
    [ "lint_race.sc"; "lint_handshake.sc"; "lint_arbiter.sc" ]

(* --- migrated checkers keep their shims -------------------------------- *)

let test_typecheck_shim () =
  let p =
    parse
      "program bad is\n\
      \  behavior M : leaf is\n\
      \  begin\n\
      \    y := 1;\n\
      \  end behavior\n\
       end program"
  in
  let ds = Typecheck.diagnostics p in
  Alcotest.(check bool) "unbound name is TYPE001" true (has_code "TYPE001" ds);
  List.iter
    (fun d ->
      Alcotest.(check string) "typecheck pass tag" "typecheck"
        d.Diagnostic.d_pass;
      Alcotest.(check bool) "type findings are errors" true
        (d.Diagnostic.d_severity = Diagnostic.Error))
    ds;
  match Typecheck.check p with
  | Ok () -> Alcotest.fail "expected a type error"
  | Error msgs ->
    Alcotest.(check (list string)) "string shim mirrors the diagnostics"
      (List.map (fun d -> d.Diagnostic.d_message) ds)
      msgs

let medical_refinement model =
  let d = List.hd Workloads.Designs.all in
  Core.Refiner.refine Workloads.Medical.spec Workloads.Medical.graph
    d.Workloads.Designs.d_partition model

let test_check_shim () =
  let r = medical_refinement Core.Model.Model2 in
  (match Core.Check.run ~original:Workloads.Medical.spec r with
  | Ok () -> ()
  | Error msgs ->
    Alcotest.failf "clean refinement rejected: %s" (String.concat "; " msgs));
  Alcotest.(check int) "no diagnostics on a clean refinement" 0
    (List.length (Core.Check.diagnostics ~original:Workloads.Medical.spec r));
  (* Re-introducing the original program variables must trip the
     leftover-state rule through both APIs, in stable order. *)
  let bad =
    {
      r with
      Core.Refiner.rf_program =
        {
          r.Core.Refiner.rf_program with
          p_vars = Workloads.Medical.spec.p_vars;
        };
    }
  in
  let ds = Core.Check.diagnostics ~original:Workloads.Medical.spec bad in
  Alcotest.(check bool) "REF001 raised" true (has_code "REF001" ds);
  Alcotest.(check (list string)) "diagnostics arrive sorted"
    (List.map Diagnostic.to_string (Diagnostic.sort ds))
    (List.map Diagnostic.to_string ds);
  match Core.Check.run ~original:Workloads.Medical.spec bad with
  | Ok () -> Alcotest.fail "leftover variables must fail the check"
  | Error msgs ->
    Alcotest.(check bool) "shim names the leftover state" true
      (List.exists (fun m -> contains m "variable") msgs)

(* --- acceptance: refined medical outputs lint clean at severity=error -- *)

let test_refined_medical_error_clean () =
  List.iter
    (fun (d : Workloads.Designs.design) ->
      List.iter
        (fun m ->
          let r =
            Core.Refiner.refine Workloads.Medical.spec Workloads.Medical.graph
              d.Workloads.Designs.d_partition m
          in
          let ds =
            Lint.Registry.run_refinement ~original:Workloads.Medical.spec r
          in
          match Diagnostic.errors ds with
          | [] -> ()
          | errs ->
            Alcotest.failf "%s/%s: %s" d.Workloads.Designs.d_name
              (Core.Model.name m)
              (String.concat "; " (List.map Diagnostic.to_string errs)))
        Core.Model.all)
    Workloads.Designs.all

(* --- properties: the race detector on generated workloads -------------- *)

let gen_cfg seed =
  {
    Workloads.Generator.default_config with
    Workloads.Generator.gen_seed = seed;
    gen_vars = 6;
    gen_leaves = 6;
    gen_par_branches = 3;
  }

(* The generator gives each parallel branch a disjoint variable group,
   so its output must be race-free. *)
let prop_generated_par_race_free =
  QCheck.Test.make ~name:"generated par specs are race-free by construction"
    ~count:25
    QCheck.(int_range 0 10_000)
    (fun seed ->
      let p = Workloads.Generator.program (gen_cfg seed) in
      let ds = Lint.Registry.run ~phase:Lint.Registry.Pre ~typecheck:false p in
      (not (has_code "RACE001" ds)) && not (has_code "RACE002" ds))

(* Seeding a write of one program variable into every leaf makes that
   variable cross parallel branches: RACE001 must fire on it. *)
let prop_injected_race_detected =
  QCheck.Test.make ~name:"a seeded cross-branch write raises RACE001"
    ~count:25
    QCheck.(int_range 0 10_000)
    (fun seed ->
      let p = Workloads.Generator.program (gen_cfg seed) in
      let victim = (List.hd p.p_vars).v_name in
      let top =
        Behavior.map_leaf_stmts
          (fun stmts -> Assign (victim, Const (VInt 1)) :: stmts)
          p.p_top
      in
      let ds =
        Lint.Registry.run ~phase:Lint.Registry.Pre ~typecheck:false
          { p with p_top = top }
      in
      List.exists
        (fun d ->
          String.equal d.Diagnostic.d_code "RACE001"
          && String.equal d.Diagnostic.d_loc victim)
        ds)

(* --- report ------------------------------------------------------------- *)

let test_report_locate () =
  let src =
    "program locate_me is\n\
    \  var shared : int<8> := 0;\n\
    \  behavior TOP : par is\n\
    \  begin\n\
    \    behavior WRITER : leaf is\n\
    \    begin\n\
    \      shared := shared + 1;\n\
    \    end behavior\n\
    \    ;\n\
    \    behavior READER : leaf is\n\
    \    begin\n\
    \      emit \"seen\" shared;\n\
    \    end behavior\n\
    \    ;\n\
    \  end behavior\n\
    end program\n"
  in
  let _, locs =
    match Parser.program_of_string_located src with
    | Ok v -> v
    | Error msg -> Alcotest.fail msg
  in
  let d path loc =
    {
      Diagnostic.d_code = "RACE001";
      d_severity = Diagnostic.Warning;
      d_pass = "race";
      d_path = path;
      d_loc = loc;
      d_message = "msg";
    }
  in
  (match Lint.Report.locate ~file:"x.sc" locs [ d [ "TOP"; "WRITER" ] "shared" ] with
  | [ located ] ->
    Alcotest.(check string) "path resolves to behavior line" "x.sc:5: shared"
      located.Diagnostic.d_loc
  | _ -> Alcotest.fail "one diagnostic in, one out");
  (* Program-wide finding: falls back to the declaration table. *)
  (match Lint.Report.locate ~file:"x.sc" locs [ d [] "shared" ] with
  | [ located ] ->
    Alcotest.(check string) "decl fallback" "x.sc:2: shared"
      located.Diagnostic.d_loc
  | _ -> Alcotest.fail "one diagnostic in, one out");
  (* A finding on a path the source map cannot resolve (e.g. a node the
     fixer synthesized) degrades to file + behavior path, never line 0. *)
  (match Lint.Report.locate ~file:"x.sc" locs [ d [ "NOPE" ] "tmp_1" ] with
  | [ located ] ->
    Alcotest.(check string) "degrades to the behavior path"
      "x.sc: NOPE: tmp_1" located.Diagnostic.d_loc
  | _ -> Alcotest.fail "one diagnostic in, one out");
  (* Unresolvable findings pass through untouched. *)
  match Lint.Report.locate ~file:"x.sc" locs [ d [] "nowhere" ] with
  | [ located ] ->
    Alcotest.(check string) "untouched" "nowhere" located.Diagnostic.d_loc
  | _ -> Alcotest.fail "one diagnostic in, one out"

let test_report_rendering () =
  let p = parse "program p is behavior b : leaf is begin skip; end behavior end program" in
  let ds = Lint.Registry.run p in
  let targets =
    [ { Lint.Report.t_name = "p.sc"; t_phase = Lint.Registry.Pre; t_diags = ds } ]
  in
  let text = Lint.Report.to_text targets in
  Alcotest.(check bool) "has header" true (contains text "== p.sc:");
  Alcotest.(check bool) "has total" true (contains text "total:");
  let json = Lint.Report.to_json targets in
  Alcotest.(check bool) "json shape" true
    (contains json "{\"targets\":[{\"name\":\"p.sc\",\"phase\":\"pre\"");
  Alcotest.(check int) "errors agree" (Lint.Report.errors targets)
    (Diagnostic.count Diagnostic.Error ds)

let () =
  Alcotest.run "lint"
    [
      ( "diagnostic",
        [
          tc "sort order" test_diagnostic_order;
          tc "rendering" test_diagnostic_render;
        ] );
      ( "fixtures",
        [
          tc "seeded race" test_fixture_race;
          tc "unpaired handshake" test_fixture_handshake;
          tc "missing arbiter" test_fixture_arbiter;
          tc "unserved address" test_unserved_address;
          tc "grant suppresses contention" test_grant_suppresses_contention;
        ] );
      ( "passes",
        [
          tc "liveness codes" test_liveness_codes;
          tc "width codes" test_width_codes;
        ] );
      ( "flow",
        [
          tc "flow off: exact set" test_flow_off_exact;
          tc "flow on: exact set" test_flow_on_exact;
          tc "single-master arbiter" test_cont002_single_master;
        ] );
      ( "registry",
        [ tc "code table" test_code_table; tc "stable order" test_run_sorted ] );
      ( "report",
        [
          tc "locate file:line" test_report_locate;
          tc "text and json rendering" test_report_rendering;
        ] );
      ( "shims",
        [
          tc "typecheck" test_typecheck_shim;
          tc "refinement check" test_check_shim;
        ] );
      ( "acceptance",
        [ tc "refined medical error-clean" test_refined_medical_error_clean ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [ prop_generated_par_race_free; prop_injected_race_detected ] );
    ]
