(** [mrefine] — command-line driver for the model-refinement flow:
    parse a specification, derive its access graph, partition it, refine
    it to one of the four implementation models, simulate, and check
    functional equivalence. *)

open Cmdliner

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

let load_spec_located path =
  match Spec.Parser.program_of_string_located (read_file path) with
  | Ok (p, locs) ->
    begin match Spec.Program.validate p with
    | Ok () -> Ok (p, locs)
    | Error msgs -> Error ("invalid specification: " ^ String.concat "; " msgs)
    end
  | Error msg -> Error msg

let load_spec path = Result.map fst (load_spec_located path)

let or_die = function
  | Ok v -> v
  | Error msg ->
    prerr_endline ("mrefine: " ^ msg);
    exit 1

(* --- common arguments -------------------------------------------------- *)

let spec_arg =
  Arg.(
    required
    & pos 0 (some file) None
    & info [] ~docv:"SPEC" ~doc:"Specification file (textual SpecCharts-like syntax).")

let model_conv =
  let parse s =
    match Core.Model.of_string s with
    | Some m -> Ok m
    | None -> Error (`Msg (Printf.sprintf "unknown model %S (use 1-4)" s))
  in
  let print ppf m = Format.pp_print_string ppf (Core.Model.name m) in
  Arg.conv (parse, print)

let memord_conv =
  let parse s =
    Result.map_error (fun msg -> `Msg msg) (Sim.Memord.policy_of_string s)
  in
  let print ppf p =
    Format.pp_print_string ppf (Sim.Memord.policy_to_string p)
  in
  Arg.conv (parse, print)

let backend_conv =
  let parse s =
    Result.map_error (fun msg -> `Msg msg) (Sim.Runtime.backend_of_string s)
  in
  let print ppf b =
    Format.pp_print_string ppf (Sim.Runtime.backend_to_string b)
  in
  Arg.conv (parse, print)

(* Sets the process-wide simulation backend before the command body
   runs, so every simulation the invocation performs — cosim gates,
   fault campaigns, litmus runs — honors one switch. *)
let backend_arg =
  let set b =
    Sim.Runtime.set_default_backend b;
    b
  in
  Term.(
    const set
    $ Arg.(
        value
        & opt backend_conv `Bytecode
        & info [ "backend" ] ~docv:"BACKEND"
            ~doc:
              "Simulation leaf machine: $(b,vm) (the bytecode register \
               VM, the default) or $(b,tree) (the retained tree-walking \
               interpreter).  Observables are bit-identical; the tree \
               backend exists as the differential oracle."))

let model_arg =
  Arg.(
    value
    & opt model_conv Core.Model.Model2
    & info [ "m"; "model" ] ~docv:"MODEL"
        ~doc:"Implementation model: model1..model4 (or 1..4).")

let parts_arg =
  Arg.(
    value
    & opt int 2
    & info [ "p"; "parts" ] ~docv:"N" ~doc:"Number of partitions (components).")

let seed_arg =
  Arg.(
    value
    & opt int 42
    & info [ "seed" ] ~docv:"SEED" ~doc:"Seed for randomized algorithms.")

let algo_arg =
  Arg.(
    value
    & opt (enum
             [ ("greedy", `Greedy); ("kl", `Kl); ("annealing", `Annealing);
               ("clustering", `Clustering) ])
        `Greedy
    & info [ "a"; "algo" ] ~docv:"ALGO"
        ~doc:"Automatic partitioner: greedy, kl, annealing or clustering.")

let assign_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "assign" ] ~docv:"ASSIGN"
        ~doc:
          "Manual partition, e.g. \"A=0,B=1,x=1\"; every behavior object and \
           variable must be assigned.  Overrides $(b,--algo).")

let protocol_arg =
  Arg.(
    value
    & opt (enum
             [ ("four-phase", Core.Protocol.Four_phase);
               ("two-phase", Core.Protocol.Two_phase) ])
        Core.Protocol.Four_phase
    & info [ "protocol" ] ~docv:"PROTO"
        ~doc:"Bus handshake: four-phase (paper Figure 5d) or two-phase.")

let output_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "o"; "output" ] ~docv:"FILE" ~doc:"Write output to FILE.")

let harden_arg =
  Arg.(
    value & flag
    & info [ "harden" ]
        ~doc:
          "Generate the hardened protocol variant: watchdog timeouts with \
           bounded exponential-backoff retries on every handshake, \
           idempotent slave re-decode and triplicated memory storage with \
           majority voting.")

(* --- partition construction -------------------------------------------- *)

let partition_of_assign g n_parts assign =
  let entries = String.split_on_char ',' assign in
  let parse_entry e =
    match String.split_on_char '=' (String.trim e) with
    | [ name; idx ] ->
      let name = String.trim name in
      let idx = int_of_string (String.trim idx) in
      let obj =
        if List.mem name g.Agraph.Access_graph.g_objects then
          Partitioning.Partition.Obj_behavior name
        else if List.mem name g.Agraph.Access_graph.g_variables then
          Partitioning.Partition.Obj_variable name
        else failwith (Printf.sprintf "unknown object %s" name)
      in
      (obj, idx)
    | _ -> failwith (Printf.sprintf "bad assignment entry %S" e)
  in
  match List.map parse_entry entries with
  | assocs ->
    let part = Partitioning.Partition.make ~n_parts assocs in
    begin match Partitioning.Partition.complete_for g part with
    | Ok () -> Ok part
    | Error msgs -> Error (String.concat "; " msgs)
    end
  | exception Failure msg -> Error msg

let make_partition g ~n_parts ~algo ~seed ~assign =
  match assign with
  | Some a -> partition_of_assign g n_parts a
  | None ->
    Ok
      (match algo with
      | `Greedy -> Partitioning.Greedy.run g ~n_parts
      | `Kl -> Partitioning.Kl.run_from_scratch g ~n_parts
      | `Annealing ->
        Partitioning.Annealing.run
          ~config:{ Partitioning.Annealing.default_config with seed }
          g ~n_parts
      | `Clustering -> Partitioning.Clustering.run g ~n_parts)

let write_out output text =
  match output with
  | None -> print_string text
  | Some path ->
    let oc = open_out path in
    output_string oc text;
    close_out oc;
    Printf.printf "wrote %s\n" path

(* --- subcommands -------------------------------------------------------- *)

let parse_cmd =
  let run spec_path =
    let p = or_die (load_spec spec_path) in
    let m = Core.Metrics.of_program p in
    Format.printf "%s: %a@." p.Spec.Ast.p_name Core.Metrics.pp m
  in
  Cmd.v (Cmd.info "parse" ~doc:"Parse and validate a specification.")
    Term.(const run $ spec_arg)

let graph_cmd =
  let run spec_path dot output =
    let p = or_die (load_spec spec_path) in
    let g = Agraph.Access_graph.of_program p in
    if dot then write_out output (Agraph.Access_graph.to_dot g)
    else begin
      Printf.printf "objects: %s\n"
        (String.concat ", " g.Agraph.Access_graph.g_objects);
      Printf.printf "variables: %s\n"
        (String.concat ", " g.Agraph.Access_graph.g_variables);
      Printf.printf "data channels: %d, control arcs: %d\n"
        (Agraph.Access_graph.channel_count g)
        (List.length g.Agraph.Access_graph.g_control);
      List.iter
        (fun (e : Agraph.Access_graph.data_edge) ->
          Printf.printf "  %s %s %s (%d x %d bits)\n"
            e.Agraph.Access_graph.de_behavior
            (match e.Agraph.Access_graph.de_dir with
            | Agraph.Access_graph.Dread -> "reads"
            | Agraph.Access_graph.Dwrite -> "writes")
            e.Agraph.Access_graph.de_variable e.Agraph.Access_graph.de_count
            e.Agraph.Access_graph.de_bits)
        g.Agraph.Access_graph.g_data
    end
  in
  let dot =
    Arg.(value & flag & info [ "dot" ] ~doc:"Emit Graphviz instead of a summary.")
  in
  Cmd.v
    (Cmd.info "graph" ~doc:"Derive and display the access graph.")
    Term.(const run $ spec_arg $ dot $ output_arg)

let partition_cmd =
  let run spec_path n_parts algo seed assign =
    let p = or_die (load_spec spec_path) in
    let g = Agraph.Access_graph.of_program p in
    let part = or_die (make_partition g ~n_parts ~algo ~seed ~assign) in
    Format.printf "%a@." Partitioning.Partition.pp part;
    let r = Partitioning.Classify.report g part in
    Printf.printf "local variables: %s\nglobal variables: %s\n"
      (String.concat ", " r.Partitioning.Classify.locals)
      (String.concat ", " r.Partitioning.Classify.globals);
    Printf.printf "cross-partition traffic: %d bits\n"
      (Partitioning.Cost.comm_bits g part)
  in
  Cmd.v
    (Cmd.info "partition" ~doc:"Partition a specification and classify variables.")
    Term.(const run $ spec_arg $ parts_arg $ algo_arg $ seed_arg $ assign_arg)

let refine_cmd =
  let run spec_path model n_parts algo seed assign output quiet protocol harden
      (_backend : Sim.Runtime.backend) =
    let p = or_die (load_spec spec_path) in
    let g = Agraph.Access_graph.of_program p in
    let part = or_die (make_partition g ~n_parts ~algo ~seed ~assign) in
    let options = { Core.Refiner.default_options with protocol; harden } in
    let r =
      try Core.Refiner.refine ~options p g part model
      with Core.Refiner.Refine_error msg -> or_die (Error msg)
    in
    begin match Core.Check.run ~original:p r with
    | Ok () -> ()
    | Error msgs ->
      prerr_endline ("mrefine: check failed: " ^ String.concat "; " msgs);
      exit 1
    end;
    if not quiet then begin
      Printf.eprintf "model: %s\n" (Core.Model.name model);
      Printf.eprintf "buses: %s\n"
        (String.concat ", "
           (List.map
              (fun (b : Core.Refiner.bus_inst) ->
                Printf.sprintf "%s(%d masters%s)"
                  b.Core.Refiner.bi_signals.Core.Protocol.bs_label
                  (List.length b.Core.Refiner.bi_requesters)
                  (match b.Core.Refiner.bi_arbiter with
                  | Some _ -> ", arbitrated"
                  | None -> ""))
              r.Core.Refiner.rf_buses));
      Printf.eprintf "memories: %s\n" (String.concat ", " r.Core.Refiner.rf_memories);
      Printf.eprintf "moved behaviors: %s\n"
        (String.concat ", " r.Core.Refiner.rf_moved);
      Printf.eprintf "size: %d -> %d lines (%.1fx)\n"
        (Spec.Printer.line_count p)
        (Spec.Printer.line_count r.Core.Refiner.rf_program)
        (Core.Metrics.growth ~original:p ~refined:r.Core.Refiner.rf_program)
    end;
    write_out output (Spec.Printer.program_to_string r.Core.Refiner.rf_program)
  in
  let quiet =
    Arg.(value & flag & info [ "q"; "quiet" ] ~doc:"Suppress the report.")
  in
  Cmd.v
    (Cmd.info "refine" ~doc:"Refine a partitioned specification to a model.")
    Term.(
      const run $ spec_arg $ model_arg $ parts_arg $ algo_arg $ seed_arg
      $ assign_arg $ output_arg $ quiet $ protocol_arg $ harden_arg
      $ backend_arg)

let simulate_cmd =
  let run spec_path vcd_path (_backend : Sim.Runtime.backend) =
    let p = or_die (load_spec spec_path) in
    let config =
      { Sim.Engine.default_config with trace_signals = vcd_path <> None }
    in
    let r = Sim.Engine.run ~config p in
    Printf.printf "outcome: %s (deltas=%d, steps=%d)\n"
      (Sim.Engine.outcome_to_string r.Sim.Engine.r_outcome)
      r.Sim.Engine.r_deltas r.Sim.Engine.r_steps;
    List.iter
      (fun e ->
        Format.printf "  emit %s = %a@." e.Sim.Trace.ev_tag Spec.Expr.pp_value
          e.Sim.Trace.ev_value)
      r.Sim.Engine.r_trace;
    List.iter
      (fun (name, v) ->
        Format.printf "  final %s = %a@." name Spec.Expr.pp_value v)
      r.Sim.Engine.r_final;
    match vcd_path with
    | None -> ()
    | Some path ->
      let oc = open_out path in
      output_string oc (Sim.Vcd.of_result p r);
      close_out oc;
      Printf.printf "wrote %s\n" path
  in
  let vcd =
    Arg.(
      value
      & opt (some string) None
      & info [ "vcd" ] ~docv:"FILE" ~doc:"Dump signal waveforms as VCD to FILE.")
  in
  Cmd.v
    (Cmd.info "simulate" ~doc:"Simulate a specification and print its trace.")
    Term.(const run $ spec_arg $ vcd $ backend_arg)

let cosim_cmd =
  let run spec_path model n_parts algo seed assign protocol harden
      (_backend : Sim.Runtime.backend) =
    let p = or_die (load_spec spec_path) in
    let g = Agraph.Access_graph.of_program p in
    let part = or_die (make_partition g ~n_parts ~algo ~seed ~assign) in
    let options = { Core.Refiner.default_options with protocol; harden } in
    let r =
      try Core.Refiner.refine ~options p g part model
      with Core.Refiner.Refine_error msg -> or_die (Error msg)
    in
    (* Hardened designs emit reserved watchdog/recovery markers with no
       counterpart in the original trace. *)
    let ignore_prefixes =
      if harden then Core.Protocol.reserved_tag_prefixes else []
    in
    let v =
      Sim.Cosim.check ~ignore_prefixes ~original:p
        ~refined:r.Core.Refiner.rf_program ()
    in
    if v.Sim.Cosim.v_equivalent then begin
      Printf.printf
        "equivalent: refined %s design matches the original specification\n"
        (Core.Model.name model);
      Printf.printf "(original: %d deltas; refined: %d deltas)\n"
        v.Sim.Cosim.v_original.Sim.Engine.r_deltas
        v.Sim.Cosim.v_refined.Sim.Engine.r_deltas
    end
    else begin
      Printf.printf "NOT equivalent:\n";
      List.iter (fun m -> Printf.printf "  %s\n" m) v.Sim.Cosim.v_problems;
      exit 1
    end
  in
  Cmd.v
    (Cmd.info "cosim"
       ~doc:"Refine, then co-simulate original vs refined and compare.")
    Term.(
      const run $ spec_arg $ model_arg $ parts_arg $ algo_arg $ seed_arg
      $ assign_arg $ protocol_arg $ harden_arg $ backend_arg)

let typecheck_cmd =
  let run spec_path =
    let p = or_die (load_spec spec_path) in
    match Spec.Typecheck.check p with
    | Ok () -> Printf.printf "%s: well typed\n" p.Spec.Ast.p_name
    | Error errs ->
      List.iter (fun e -> Printf.printf "type error: %s\n" e) errs;
      exit 1
  in
  Cmd.v
    (Cmd.info "typecheck" ~doc:"Statically typecheck a specification.")
    Term.(const run $ spec_arg)

let export_cmd =
  let run spec_path backend output refine_first model n_parts algo seed assign =
    let p = or_die (load_spec spec_path) in
    let p =
      if not refine_first then p
      else begin
        let g = Agraph.Access_graph.of_program p in
        let part = or_die (make_partition g ~n_parts ~algo ~seed ~assign) in
        let r =
          try Core.Refiner.refine p g part model
          with Core.Refiner.Refine_error msg -> or_die (Error msg)
        in
        r.Core.Refiner.rf_program
      end
    in
    let code =
      match backend with
      | `Vhdl -> Export.Vhdl.emit_program p
      | `C -> Export.C_backend.emit_program p
    in
    write_out output (or_die code)
  in
  let backend =
    Arg.(
      value
      & opt (enum [ ("vhdl", `Vhdl); ("c", `C) ]) `Vhdl
      & info [ "b"; "backend" ] ~docv:"BACKEND"
          ~doc:
            "Code generator: vhdl (full specifications) or c (sequential \
             software).")
  in
  let refine_first =
    Arg.(
      value & flag
      & info [ "refine" ]
          ~doc:"Refine first (with --model/--parts/--algo/--assign), then export.")
  in
  Cmd.v
    (Cmd.info "export" ~doc:"Generate VHDL or C from a specification.")
    Term.(
      const run $ spec_arg $ backend $ output_arg $ refine_first $ model_arg
      $ parts_arg $ algo_arg $ seed_arg $ assign_arg)

let quality_cmd =
  let run spec_path model n_parts algo seed assign =
    let p = or_die (load_spec spec_path) in
    let g = Agraph.Access_graph.of_program p in
    let part = or_die (make_partition g ~n_parts ~algo ~seed ~assign) in
    let r =
      try Core.Refiner.refine p g part model
      with Core.Refiner.Refine_error msg -> or_die (Error msg)
    in
    if n_parts > 2 then
      prerr_endline
        "mrefine: note: the default allocation pairs a processor with ASICs";
    let alloc =
      Arch.Allocation.make
        (List.init n_parts (fun i ->
             if i = 0 then Arch.Catalog.i8086 else Arch.Catalog.asic_10k))
    in
    let q = Core.Quality.of_refinement ~alloc r in
    Format.printf "@[<v>%a@]@." Core.Quality.pp q
  in
  Cmd.v
    (Cmd.info "quality"
       ~doc:"Refine and estimate quality metrics (time, size, gates, pins).")
    Term.(
      const run $ spec_arg $ model_arg $ parts_arg $ algo_arg $ seed_arg
      $ assign_arg)

let demo_cmd =
  let run () =
    let spec = Workloads.Medical.spec in
    let g = Workloads.Medical.graph in
    Printf.printf "medical system: %d lines, %d channels\n"
      (Spec.Printer.line_count spec)
      (Agraph.Access_graph.channel_count g);
    List.iter
      (fun (d : Workloads.Designs.design) ->
        List.iter
          (fun m ->
            let r = Core.Refiner.refine spec g d.Workloads.Designs.d_partition m in
            let v =
              Sim.Cosim.check ~original:spec
                ~refined:r.Core.Refiner.rf_program ()
            in
            Printf.printf "%-8s %-7s -> %4d lines, %d buses, cosim %s\n"
              d.Workloads.Designs.d_name (Core.Model.name m)
              (Spec.Printer.line_count r.Core.Refiner.rf_program)
              (List.length r.Core.Refiner.rf_buses)
              (if v.Sim.Cosim.v_equivalent then "ok" else "FAILED"))
          Core.Model.all)
      Workloads.Designs.all
  in
  Cmd.v
    (Cmd.info "demo" ~doc:"Run the built-in medical workload across all models.")
    Term.(const run $ const ())

let explore_cmd =
  let bias_conv =
    let parse s =
      match Explore.Candidate.bias_of_string s with
      | Some b -> Ok b
      | None ->
        Error (`Msg (Printf.sprintf
                       "unknown bias %S (use balanced, local or global)" s))
    in
    let print ppf b =
      Format.pp_print_string ppf (Explore.Candidate.bias_name b)
    in
    Arg.conv (parse, print)
  in
  let models_arg =
    Arg.(
      value
      & opt (list model_conv) Core.Model.all
      & info [ "models" ] ~docv:"MODELS"
          ~doc:"Comma-separated implementation models to sweep (default: all four).")
  in
  let seeds_arg =
    Arg.(
      value
      & opt (list int) [ 1; 2; 3 ]
      & info [ "seeds" ] ~docv:"SEEDS"
          ~doc:"Comma-separated partition-search seeds.")
  in
  let biases_arg =
    Arg.(
      value
      & opt (list bias_conv) Explore.Candidate.all_biases
      & info [ "biases" ] ~docv:"BIASES"
          ~doc:"Comma-separated local/global balance targets: balanced, \
                local, global (default: all three).")
  in
  let jobs_arg =
    Arg.(
      value
      & opt int 1
      & info [ "j"; "jobs" ] ~docv:"N"
          ~doc:"Worker domains evaluating candidates in parallel.  The \
                result is identical for every N.")
  in
  let json_arg =
    Arg.(value & flag & info [ "json" ] ~doc:"Emit the report as JSON.")
  in
  let top_arg =
    Arg.(
      value
      & opt int 0
      & info [ "top" ] ~docv:"K"
          ~doc:"Show only the first K candidate rows (0 = all).  The \
                Pareto frontier is always printed in full.")
  in
  let steps_arg =
    Arg.(
      value
      & opt int 4000
      & info [ "steps" ] ~docv:"STEPS"
          ~doc:"Annealing steps per partition search.")
  in
  let cache_dir_arg =
    Arg.(
      value
      & opt string ".mrefine-cache"
      & info [ "cache-dir" ] ~docv:"DIR"
          ~doc:"Persistent evaluation cache directory; repeated sweeps \
                reuse refinements across runs.")
  in
  let no_cache_arg =
    Arg.(
      value & flag
      & info [ "no-cache" ] ~doc:"Do not read or write the on-disk cache.")
  in
  let deadline_arg =
    Arg.(
      value
      & opt (some float) None
      & info [ "deadline" ] ~docv:"SECONDS"
          ~doc:"Per-candidate wall-clock budget.  A candidate exceeding it \
                (e.g. a runaway simulation) is cancelled cooperatively and \
                reported as timed out; the other workers are unaffected \
                and nothing transient is cached.")
  in
  let retries_arg =
    Arg.(
      value
      & opt int 2
      & info [ "retries" ] ~docv:"N"
          ~doc:"Supervised retries (with exponential backoff) for an \
                evaluation that raises, before the candidate is \
                quarantined as crashed.")
  in
  let resume_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "resume" ] ~docv:"JOURNAL"
          ~doc:"Checkpoint journal file (created if missing).  Every \
                definitive evaluation is appended as it completes; rerun \
                with the same journal after a crash or kill to replay \
                completed candidates and continue from the frontier.")
  in
  let run spec_path models seeds biases n_parts steps jobs json top cache_dir
      no_cache deadline retries resume output =
    let p = or_die (load_spec spec_path) in
    if jobs < 1 then or_die (Error "--jobs must be >= 1");
    if retries < 0 then or_die (Error "--retries must be >= 0");
    if models = [] || seeds = [] || biases = [] then
      or_die (Error "--models, --seeds and --biases must be non-empty");
    let cache =
      if no_cache then Explore.Cache.create ()
      else
        try Explore.Cache.create ~dir:cache_dir ()
        with Sys_error msg ->
          or_die
            (Error (Printf.sprintf "cannot create cache directory %s: %s"
                      cache_dir msg))
    in
    let config =
      {
        Explore.Sweep.seeds;
        biases;
        models;
        n_parts;
        steps;
        jobs;
        deadline_s = deadline;
        retries;
        backoff_s = Explore.Sweep.default_config.Explore.Sweep.backoff_s;
      }
    in
    let journal =
      match resume with
      | None -> None
      | Some path ->
        (try
           Some
             (Checkpoint.Journal.open_ ~path
                ~meta:(Explore.Sweep.journal_meta config p))
         with Checkpoint.Journal.Journal_error msg -> or_die (Error msg))
    in
    let sw = Explore.Sweep.run ~cache ?journal config p in
    Option.iter Checkpoint.Journal.close journal;
    let report =
      if json then Explore.Sweep.to_json ~top sw
      else Explore.Sweep.to_text ~top sw
    in
    write_out output report
  in
  Cmd.v
    (Cmd.info "explore"
       ~doc:
         "Sweep the design space (partition seeds x biases x models), \
          evaluate every candidate in parallel with memoization, and \
          report the Pareto frontier over max bus rate, specification \
          growth and pins+gates.  Long sweeps run supervised: worker \
          crashes and per-candidate deadlines degrade coverage instead \
          of aborting, and $(b,--resume) checkpoints every completed \
          evaluation to a crash-safe journal.")
    Term.(
      const run $ spec_arg $ models_arg $ seeds_arg $ biases_arg $ parts_arg
      $ steps_arg $ jobs_arg $ json_arg $ top_arg $ cache_dir_arg
      $ no_cache_arg $ deadline_arg $ retries_arg $ resume_arg $ output_arg)

let faults_cmd =
  let cls_conv =
    let parse s =
      match Faults.Fault.cls_of_name s with
      | Some c -> Ok c
      | None ->
        Error
          (`Msg
            (Printf.sprintf "unknown fault class %S (use %s)" s
               (String.concat ", "
                  (List.map Faults.Fault.cls_name Faults.Fault.all_classes))))
    in
    let print ppf c = Format.pp_print_string ppf (Faults.Fault.cls_name c) in
    Arg.conv (parse, print)
  in
  let classes_arg =
    Arg.(
      value
      & opt (list cls_conv) Faults.Fault.all_classes
      & info [ "faults" ] ~docv:"CLASSES"
          ~doc:
            "Comma-separated fault classes to inject: bit-flip, \
             multi-bit-flip, drop-handshake, delay-handshake, stuck-line, \
             grant-starvation (default: all).")
  in
  let seeds_arg =
    Arg.(
      value
      & opt int 8
      & info [ "seeds" ] ~docv:"N"
          ~doc:"Seeded campaign rounds; each round draws one fault per class.")
  in
  let base_seed_arg =
    Arg.(
      value
      & opt int 1
      & info [ "base-seed" ] ~docv:"SEED"
          ~doc:"Base seed of the campaign's deterministic fault draws.")
  in
  let json_arg =
    Arg.(value & flag & info [ "json" ] ~doc:"Emit the report as JSON.")
  in
  let deadline_arg =
    Arg.(
      value
      & opt (some float) None
      & info [ "deadline" ] ~docv:"SECONDS"
          ~doc:"Wall-clock budget of the whole campaign: once exceeded, \
                the running simulation is cancelled cooperatively and the \
                remaining runs are classified timed-out instead of \
                hanging the command.")
  in
  let resume_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "resume" ] ~docv:"JOURNAL"
          ~doc:"Checkpoint journal file (created if missing).  Every \
                classified run is appended as it completes; rerun with the \
                same journal to replay completed runs and continue the \
                campaign from where it stopped.")
  in
  let ordering_arg =
    Arg.(
      value
      & opt memord_conv Sim.Memord.Sc
      & info [ "ordering" ] ~docv:"POLICY"
          ~doc:"Port-ordering semantics of the refined multi-port memory \
                during the campaign: sc (default, today's sequentially \
                consistent commits), per-port-fifo, or relaxed[:N] \
                (bounded per-port reordering window).  Every run, golden \
                and faulty alike, executes under the same policy and \
                scheduler seed.")
  in
  let run spec_path model n_parts algo seed assign protocol harden classes
      seeds base_seed json deadline resume ordering output
      (_backend : Sim.Runtime.backend) =
    let p = or_die (load_spec spec_path) in
    if seeds < 1 then or_die (Error "--seeds must be >= 1");
    if classes = [] then or_die (Error "--faults must be non-empty");
    let g = Agraph.Access_graph.of_program p in
    let part = or_die (make_partition g ~n_parts ~algo ~seed ~assign) in
    let options = { Core.Refiner.default_options with protocol; harden } in
    let r =
      try Core.Refiner.refine ~options p g part model
      with Core.Refiner.Refine_error msg -> or_die (Error msg)
    in
    (* A campaign against an unhardened design: surface the contextual
       ROBUST001 warnings so the deadlocks below come as no surprise. *)
    if not harden then begin
      match Lint.Registry.find_pass "robust" with
      | None -> ()
      | Some pass ->
        let ds =
          Lint.Registry.run ~phase:Lint.Registry.Post ~typecheck:false
            ~passes:[ pass ] r.Core.Refiner.rf_program
        in
        List.iter
          (fun d -> prerr_endline ("mrefine: " ^ Spec.Diagnostic.to_string d))
          ds
    end;
    let config =
      {
        Faults.Campaign.default_config with
        Faults.Campaign.cf_seeds = seeds;
        cf_base_seed = base_seed;
        cf_classes = classes;
        cf_deadline_s = deadline;
        cf_ordering = ordering;
      }
    in
    let journal =
      match resume with
      | None -> None
      | Some path ->
        (try
           Some
             (Checkpoint.Journal.open_ ~path
                ~meta:(Faults.Campaign.journal_meta config r))
         with Checkpoint.Journal.Journal_error msg -> or_die (Error msg))
    in
    let report =
      try Faults.Campaign.run ~config ?journal r
      with Faults.Campaign.Campaign_error msg ->
        or_die (Error ("fault campaign: " ^ msg))
    in
    Option.iter Checkpoint.Journal.close journal;
    let text =
      if json then Faults.Campaign.to_json report
      else Faults.Campaign.to_text report
    in
    write_out output text
  in
  Cmd.v
    (Cmd.info "faults"
       ~doc:
         "Refine, then run a deterministic seeded fault-injection campaign \
          against the co-simulated design: memory bit flips, dropped and \
          delayed handshake events, stuck bus lines, arbiter grant \
          starvation.  Classifies every run as survived, recovered, \
          deadlock, silent-corruption or step-limit; with $(b,--harden) \
          the design retries and repairs instead of hanging.")
    Term.(
      const run $ spec_arg $ model_arg $ parts_arg $ algo_arg $ seed_arg
      $ assign_arg $ protocol_arg $ harden_arg $ classes_arg $ seeds_arg
      $ base_seed_arg $ json_arg $ deadline_arg $ resume_arg $ ordering_arg
      $ output_arg $ backend_arg)

let litmus_cmd =
  let orderings_arg =
    Arg.(
      value
      & opt (list memord_conv)
          [
            Sim.Memord.Sc;
            Sim.Memord.Per_port_fifo;
            Sim.Memord.Relaxed Sim.Memord.default_window;
          ]
      & info [ "ordering" ] ~docv:"POLICIES"
          ~doc:"Comma-separated port-ordering policies to run each shape \
                under: sc, per-port-fifo, relaxed[:N] (default: all \
                three).")
  in
  let shapes_arg =
    Arg.(
      value
      & opt (list string) []
      & info [ "shape" ] ~docv:"NAMES"
          ~doc:"Comma-separated shape names to run (default: all).  \
                Available: sb, mp, lb, co, mem, mem-tmr.")
  in
  let seeds_arg =
    Arg.(
      value
      & opt int 4
      & info [ "seeds" ] ~docv:"N"
          ~doc:"Scheduler seeds 1..N per weak ordering (sc is \
                deterministic and runs once).")
  in
  let faults_arg =
    Arg.(
      value & flag
      & info [ "faults" ]
          ~doc:"Also run each shape under its canned fault plans (a late \
                bit flip pushing an observed register out of the domain, \
                and a dropped handshake edge) from $(b,lib/faults).")
  in
  let json_arg =
    Arg.(value & flag & info [ "json" ] ~doc:"Emit the report as JSON.")
  in
  let run orderings shapes seeds faults json output
      (_backend : Sim.Runtime.backend) =
    if seeds < 1 then or_die (Error "--seeds must be >= 1");
    if orderings = [] then or_die (Error "--ordering must be non-empty");
    let cf_shapes =
      match shapes with
      | [] -> Litmus.Shape.all ()
      | names ->
        List.map
          (fun n ->
            match Litmus.Shape.find n with
            | Some s -> s
            | None ->
              or_die
                (Error
                   (Printf.sprintf
                      "unknown litmus shape %S (use sb, mp, lb, co, mem or \
                       mem-tmr)"
                      n)))
          names
    in
    let cfg =
      {
        Litmus.Suite.cf_shapes;
        cf_orderings = orderings;
        cf_seeds = seeds;
        cf_faults = faults;
        (* [--backend] already set the process default; None defers to it *)
        cf_backend = None;
      }
    in
    let rp = Litmus.Suite.run cfg in
    write_out output
      (if json then Litmus.Suite.to_json rp else Litmus.Suite.to_text rp);
    (* Forbidden outcomes, corruption outside fault injection, and kernel
       disagreements all mean the ordering model is broken — fail. *)
    let bad =
      rp.Litmus.Suite.rp_forbidden > 0
      || rp.Litmus.Suite.rp_kernel_mismatches > 0
      || (not faults) && rp.Litmus.Suite.rp_corruption > 0
    in
    if bad then exit 1
  in
  Cmd.v
    (Cmd.info "litmus"
       ~doc:
         "Run the built-in weak-memory litmus shapes (store buffering, \
          message passing, load buffering, coherence, and a generated \
          two-port Model3 memory, hardened and not) across port-ordering \
          policies, scheduler seeds and optional fault plans, on both \
          simulation kernels.  Classifies every outcome as sc-consistent, \
          weak-allowed, forbidden, deadlock or corruption against the \
          shape's enumerated allowed sets, and reports RACE003 for shapes \
          whose outcome is ordering-dependent.  Exits non-zero on any \
          forbidden outcome, fault-free corruption, or kernel mismatch.")
    Term.(
      const run $ orderings_arg $ shapes_arg $ seeds_arg $ faults_arg
      $ json_arg $ output_arg $ backend_arg)

let lint_cmd =
  let severity_conv =
    let parse s =
      match Spec.Diagnostic.severity_of_string s with
      | Some sev -> Ok sev
      | None ->
        Error (`Msg (Printf.sprintf
                       "unknown severity %S (use info, warning or error)" s))
    in
    let print ppf sev =
      Format.pp_print_string ppf (Spec.Diagnostic.severity_name sev)
    in
    Arg.conv (parse, print)
  in
  let phase_conv =
    Arg.enum
      [ ("auto", None); ("pre", Some Lint.Registry.Pre);
        ("post", Some Lint.Registry.Post) ]
  in
  let spec_opt_arg =
    Arg.(
      value
      & pos 0 (some file) None
      & info [] ~docv:"SPEC"
          ~doc:"Specification file to lint (omit with $(b,--workloads)).")
  in
  let severity_arg =
    Arg.(
      value
      & opt severity_conv Spec.Diagnostic.Info
      & info [ "severity" ] ~docv:"LEVEL"
          ~doc:"Report only diagnostics of at least this severity: info \
                (default), warning or error.")
  in
  let code_arg =
    Arg.(
      value
      & opt (list string) []
      & info [ "code" ] ~docv:"CODES"
          ~doc:"Report only these comma-separated diagnostic codes, e.g. \
                RACE001,PROTO002.")
  in
  let phase_arg =
    Arg.(
      value
      & opt phase_conv None
      & info [ "phase" ] ~docv:"PHASE"
          ~doc:"Severity policy phase: pre (unpartitioned input), post \
                (refined output) or auto (detect from the program shape; \
                default).")
  in
  let json_arg =
    Arg.(value & flag & info [ "json" ] ~doc:"Emit the report as JSON.")
  in
  let workloads_arg =
    Arg.(
      value & flag
      & info [ "workloads" ]
          ~doc:"Lint every built-in workload spec plus all refined medical \
                (design x model) outputs instead of a SPEC file.")
  in
  let list_codes_arg =
    Arg.(
      value & flag
      & info [ "list-codes" ] ~doc:"Print the diagnostic code table and exit.")
  in
  let flow_arg =
    Arg.(
      value & flag
      & info [ "flow" ]
          ~doc:"Run the flow-sensitive analyses: build a control-flow graph \
                and interval/liveness fixpoint per leaf behavior, prune \
                unreachable-by-value findings, add dead-store and \
                written-never-read diagnostics, and sharpen width checks \
                with value ranges.")
  in
  let fix_arg =
    Arg.(
      value & flag
      & info [ "fix" ]
          ~doc:"Rewrite the spec to fix the mechanical diagnostics \
                (CONT001, PROTO003, WIDTH001; restrict with $(b,--code)) \
                and print the fixed source.  Every rewrite is gated: it \
                must re-parse, re-lint clean for the fixed code and \
                cosimulate bit-identically with the input; refused fixes \
                are reported on stderr with the reason.")
  in
  let override_arg =
    Arg.(
      value
      & opt_all string []
      & info [ "severity-override" ] ~docv:"CODE=LEVEL"
          ~doc:"Remap a diagnostic code's severity (LEVEL = error, \
                warning, info) or silence it (LEVEL = off), e.g. \
                $(b,--severity-override WIDTH001=error).  Repeatable; \
                applied before $(b,--severity) filtering and the exit \
                code.")
  in
  (* One lint target: a named program with an optional forced phase and,
     for targets read from a file, the parser's source-line table. *)
  let lint_target overrides flow (name, p, phase, locs) =
    let ds = Lint.Registry.run ?phase ~overrides ~flow p in
    (name, p, phase, locs, ds)
  in
  let workload_targets () =
    let builtin =
      [
        ("fig1", Workloads.Smallspecs.fig1);
        ("fig2", Workloads.Smallspecs.fig2);
        ("pingpong", Workloads.Smallspecs.ping_pong);
        ("medical", Workloads.Medical.spec);
        ("elevator", Workloads.Elevator.spec);
        ("fir", Workloads.Fir.spec);
      ]
    in
    let refined =
      List.concat_map
        (fun (d : Workloads.Designs.design) ->
          List.map
            (fun m ->
              let r =
                Core.Refiner.refine Workloads.Medical.spec
                  Workloads.Medical.graph d.Workloads.Designs.d_partition m
              in
              ( Printf.sprintf "medical/%s/%s" d.Workloads.Designs.d_name
                  (Core.Model.name m),
                r.Core.Refiner.rf_program,
                Some Lint.Registry.Post ))
            Core.Model.all)
        Workloads.Designs.all
    in
    List.map (fun (n, p) -> (n, p, None)) builtin @ refined
    |> List.map (fun (n, p, ph) -> (n, p, ph, None))
  in
  let run spec_path severity codes phase json workloads list_codes overrides
      flow fix output =
    if list_codes then begin
      List.iter
        (fun (code, descr) -> Printf.printf "%-9s %s\n" code descr)
        Lint.Registry.code_table;
      exit 0
    end;
    if fix then begin
      (match spec_path with
      | None -> or_die (Error "--fix needs a SPEC file (not --workloads)")
      | Some path ->
        let p, _ = or_die (load_spec_located path) in
        let fix_codes =
          if codes = [] then Lint.Fixer.fixable_codes
          else begin
            match
              List.filter
                (fun c -> List.mem c Lint.Fixer.fixable_codes)
                codes
            with
            | [] ->
              or_die
                (Error
                   (Printf.sprintf "no fixable code among %s (fixable: %s)"
                      (String.concat ", " codes)
                      (String.concat ", " Lint.Fixer.fixable_codes)))
            | sel -> sel
          end
        in
        let r = Lint.Fixer.fix ~codes:fix_codes p in
        if json then begin
          let applied =
            List.map
              (fun (a : Lint.Fixer.applied) ->
                Printf.sprintf
                  "{\"code\":\"%s\",\"loc\":\"%s\",\"note\":\"%s\"}"
                  (Spec.Diagnostic.json_escape a.Lint.Fixer.fx_code)
                  (Spec.Diagnostic.json_escape a.Lint.Fixer.fx_loc)
                  (Spec.Diagnostic.json_escape a.Lint.Fixer.fx_note))
              r.Lint.Fixer.x_applied
          in
          let refused =
            List.map
              (fun (f : Lint.Fixer.refused) ->
                Printf.sprintf
                  "{\"code\":\"%s\",\"loc\":\"%s\",\"reason\":\"%s\"}"
                  (Spec.Diagnostic.json_escape f.Lint.Fixer.fr_code)
                  (Spec.Diagnostic.json_escape f.Lint.Fixer.fr_loc)
                  (Spec.Diagnostic.json_escape f.Lint.Fixer.fr_reason))
              r.Lint.Fixer.x_refused
          in
          write_out output
            (Printf.sprintf
               "{\"changed\":%b,\"applied\":[%s],\"refused\":[%s],\
                \"source\":\"%s\"}"
               r.Lint.Fixer.x_changed
               (String.concat "," applied)
               (String.concat "," refused)
               (Spec.Diagnostic.json_escape r.Lint.Fixer.x_source))
        end
        else begin
          List.iter
            (fun (a : Lint.Fixer.applied) ->
              Printf.eprintf "applied %s %s: %s\n" a.Lint.Fixer.fx_code
                a.Lint.Fixer.fx_loc a.Lint.Fixer.fx_note)
            r.Lint.Fixer.x_applied;
          List.iter
            (fun (f : Lint.Fixer.refused) ->
              Printf.eprintf "refused %s %s: %s\n" f.Lint.Fixer.fr_code
                f.Lint.Fixer.fr_loc f.Lint.Fixer.fr_reason)
            r.Lint.Fixer.x_refused;
          write_out output r.Lint.Fixer.x_source
        end);
      exit 0
    end;
    let overrides =
      List.map
        (fun s ->
          match Lint.Registry.parse_override s with
          | Ok ov -> ov
          | Error msg -> or_die (Error msg))
        overrides
    in
    let targets =
      if workloads then workload_targets ()
      else
        match spec_path with
        | None -> or_die (Error "give a SPEC file or --workloads")
        | Some path ->
          let p, locs = or_die (load_spec_located path) in
          [ (path, p, phase, Some locs) ]
    in
    let results = List.map (lint_target overrides flow) targets in
    let keep d =
      Spec.Diagnostic.severity_rank d.Spec.Diagnostic.d_severity
      <= Spec.Diagnostic.severity_rank severity
      && (codes = [] || List.mem d.Spec.Diagnostic.d_code codes)
    in
    let targets =
      List.map
        (fun (name, p, ph, locs, ds) ->
          let ds = List.filter keep ds in
          let ds =
            match locs with
            | Some locs -> Lint.Report.locate ~file:name locs ds
            | None -> ds
          in
          let t_phase =
            match ph with
            | Some ph -> ph
            | None -> Lint.Registry.infer_phase p
          in
          { Lint.Report.t_name = name; t_phase; t_diags = ds })
        results
    in
    let report =
      if json then Lint.Report.to_json targets else Lint.Report.to_text targets
    in
    write_out output report;
    if Lint.Report.errors targets > 0 then exit 1
  in
  Cmd.v
    (Cmd.info "lint"
       ~doc:
         "Run the static-analysis passes (races, protocol conformance, \
          liveness, bus contention, width narrowing) plus the type checker \
          over a specification, and exit non-zero on any error-severity \
          diagnostic.  $(b,--flow) adds the CFG/interval/liveness \
          fixpoint analyses; $(b,--fix) rewrites the mechanical findings \
          with simulation-equivalence gating.")
    Term.(
      const run $ spec_opt_arg $ severity_arg $ code_arg $ phase_arg
      $ json_arg $ workloads_arg $ list_codes_arg $ override_arg
      $ flow_arg $ fix_arg $ output_arg)

let serve_cmd =
  let socket_arg =
    Arg.(
      value
      & opt string ".mrefine.sock"
      & info [ "socket" ] ~docv:"PATH"
          ~doc:"Unix-domain socket path to listen on (a stale socket file \
                is replaced).")
  in
  let jobs_arg =
    Arg.(
      value
      & opt int 1
      & info [ "j"; "jobs" ] ~docv:"N"
          ~doc:"Worker domains per dispatched batch.  1 (the default) runs \
                jobs inline in the dispatcher, which keeps the simulator's \
                domain-local session cache hot across requests.")
  in
  let cache_dir_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "cache-dir" ] ~docv:"DIR"
          ~doc:"Persist the shared evaluation cache under DIR; omitted = \
                in-memory only.")
  in
  let cache_entries_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "cache-entries" ] ~docv:"N"
          ~doc:"Cap the resident evaluation-cache entries (LRU evicted; \
                with $(b,--cache-dir) eviction demotes to disk).")
  in
  let cache_bytes_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "cache-bytes" ] ~docv:"BYTES"
          ~doc:"Cap the resident evaluation-cache payload bytes.")
  in
  let journal_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "journal" ] ~docv:"FILE"
          ~doc:"Crash-safe job journal (created if missing).  Submitted \
                jobs and their outcomes are checkpointed; a restarted \
                daemon replays finished jobs and re-enqueues the ones that \
                were in flight when it died.")
  in
  let max_jobs_arg =
    Arg.(
      value
      & opt int 4096
      & info [ "max-jobs" ] ~docv:"N"
          ~doc:"Bound on retained jobs; submits beyond it are rejected.")
  in
  let deadline_arg =
    Arg.(
      value
      & opt (some float) None
      & info [ "default-deadline" ] ~docv:"SECONDS"
          ~doc:"Per-job wall-clock budget applied to jobs that carry no \
                $(i,job_deadline) of their own; exceeded jobs are \
                cancelled cooperatively and reported failed.")
  in
  let listen_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "listen" ] ~docv:"HOST:PORT"
          ~doc:"Additionally listen on TCP (port 0 picks an ephemeral \
                port).  TCP clients must authenticate when a token is \
                configured.")
  in
  let token_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "token" ] ~docv:"SECRET"
          ~doc:"Shared-secret token TCP clients must present as their \
                first frame ($(i,{\"op\":\"auth\",...})).  Unix-socket \
                clients are trusted by file permissions and never need \
                it.")
  in
  let token_file_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "token-file" ] ~docv:"FILE"
          ~doc:"Read the shared-secret token from FILE (trailing \
                whitespace stripped); keeps the secret out of process \
                listings.")
  in
  let max_connections_arg =
    Arg.(
      value
      & opt int 256
      & info [ "max-connections" ] ~docv:"N"
          ~doc:"Cap on simultaneous connections; clients beyond it get \
                one structured error reply with a $(i,retry_after_ms) \
                hint and are disconnected.")
  in
  let idle_timeout_arg =
    Arg.(
      value
      & opt float 300.
      & info [ "idle-timeout" ] ~docv:"SECONDS"
          ~doc:"Reap connections that send nothing for this long \
                (0 disables).")
  in
  let write_timeout_arg =
    Arg.(
      value
      & opt float 30.
      & info [ "write-timeout" ] ~docv:"SECONDS"
          ~doc:"Reap connections that will not drain our replies for \
                this long (0 disables).")
  in
  let max_frame_bytes_arg =
    Arg.(
      value
      & opt int (4 * 1024 * 1024)
      & info [ "max-frame-bytes" ] ~docv:"BYTES"
          ~doc:"Cap on one request frame; larger frames cost one error \
                reply and are discarded.")
  in
  let max_pending_arg =
    Arg.(
      value
      & opt int 256
      & info [ "max-pending" ] ~docv:"N"
          ~doc:"Admission-control cap on queued plus running jobs; \
                submits past it are turned away with a \
                $(i,retry_after_ms) backpressure hint.")
  in
  let run socket jobs cache_dir cache_entries cache_bytes journal max_jobs
      deadline listen token token_file max_connections idle_timeout
      write_timeout max_frame_bytes max_pending =
    if jobs < 1 then or_die (Error "--jobs must be >= 1");
    if max_jobs < 1 then or_die (Error "--max-jobs must be >= 1");
    if max_pending < 1 then or_die (Error "--max-pending must be >= 1");
    if max_connections < 1 then
      or_die (Error "--max-connections must be >= 1");
    if max_frame_bytes < 1024 then
      or_die (Error "--max-frame-bytes must be >= 1024");
    let token =
      match (token, token_file) with
      | Some _, Some _ ->
        or_die (Error "give only one of --token and --token-file")
      | Some t, None -> Some t
      | None, Some path -> Some (String.trim (read_file path))
      | None, None -> None
    in
    let listen =
      match listen with
      | None -> None
      | Some s -> (
        match Serve.Server.endpoint_of_string s with
        | Ok (Serve.Server.Tcp _ as e) -> Some e
        | Ok (Serve.Server.Unix_path _) ->
          or_die (Error "--listen wants HOST:PORT (the Unix socket is \
                         always bound via --socket)")
        | Error msg -> or_die (Error msg))
    in
    let session =
      try
        Serve.Session.create ?cache_dir ?cache_entries:cache_entries
          ?cache_bytes ()
      with
      | Sys_error msg -> or_die (Error ("cannot create cache directory: " ^ msg))
      | Invalid_argument msg -> or_die (Error msg)
    in
    let journal =
      match journal with
      | None -> None
      | Some path ->
        (try
           Some
             (Checkpoint.Journal.open_ ~path
                ~meta:Serve.Scheduler.journal_meta)
         with Checkpoint.Journal.Journal_error msg -> or_die (Error msg))
    in
    let scheduler =
      Serve.Scheduler.create ?journal ~jobs ~max_jobs ~max_pending
        ?default_deadline_s:deadline session
    in
    let config =
      {
        Serve.Server.default_config with
        cfg_token = token;
        cfg_max_connections = max_connections;
        cfg_max_frame_bytes = max_frame_bytes;
        cfg_idle_timeout_s =
          (if idle_timeout <= 0. then None else Some idle_timeout);
        cfg_write_timeout_s =
          (if write_timeout <= 0. then None else Some write_timeout);
      }
    in
    let server =
      try Serve.Server.start ~config ?listen ~socket scheduler
      with Unix.Unix_error (err, _, msg) ->
        or_die
          (Error
             (Printf.sprintf "cannot listen on %s: %s%s" socket
                (Unix.error_message err)
                (if msg = "" then "" else " (" ^ msg ^ ")")))
    in
    let stop _ = Serve.Server.stop server in
    Sys.set_signal Sys.sigterm (Sys.Signal_handle stop);
    Sys.set_signal Sys.sigint (Sys.Signal_handle stop);
    Sys.set_signal Sys.sigpipe Sys.Signal_ignore;
    (match Serve.Server.tcp_port server with
    | Some port ->
      Printf.eprintf "mrefine serve: listening on %s and tcp port %d%s\n%!"
        socket port
        (if token = None then " (no token!)" else "")
    | None -> Printf.eprintf "mrefine serve: listening on %s\n%!" socket);
    Serve.Server.run server;
    Option.iter Checkpoint.Journal.close journal
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:
         "Run the persistent refinement daemon: a Unix-domain socket \
          speaking a newline-delimited JSON job protocol (submit / status \
          / result / cancel / stats / shutdown) over refine, lint, \
          explore, faults and litmus jobs.  One long-lived process keeps the \
          evaluation cache and every elaborated specification hot across \
          requests; with $(b,--journal), a killed daemon resumes its \
          in-flight jobs on restart.  With $(b,--listen) the same daemon \
          also serves TCP, guarded by a shared-secret token; SIGTERM \
          drains gracefully (stop accepting, finish or journal in-flight \
          jobs, exit).")
    Term.(
      const run $ socket_arg $ jobs_arg $ cache_dir_arg $ cache_entries_arg
      $ cache_bytes_arg $ journal_arg $ max_jobs_arg $ deadline_arg
      $ listen_arg $ token_arg $ token_file_arg $ max_connections_arg
      $ idle_timeout_arg $ write_timeout_arg $ max_frame_bytes_arg
      $ max_pending_arg)

let client_cmd =
  let socket_arg =
    Arg.(
      value
      & opt string ".mrefine.sock"
      & info [ "socket" ] ~docv:"PATH" ~doc:"Daemon socket to connect to.")
  in
  let submit_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "submit" ] ~docv:"KIND"
          ~doc:"Submit a job: refine, lint, explore, faults (each needs \
                $(b,--spec)) or litmus.")
  in
  let spec_arg =
    Arg.(
      value
      & opt (some file) None
      & info [ "spec" ] ~docv:"SPEC"
          ~doc:"Specification file; its text is embedded in the job.")
  in
  let id_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "id" ] ~docv:"ID"
          ~doc:"Client-chosen job id; resubmitting an id is idempotent.")
  in
  let arg_arg =
    Arg.(
      value
      & opt_all string []
      & info [ "arg" ] ~docv:"KEY=VALUE"
          ~doc:"Extra job field, e.g. $(b,--arg parts=3), $(b,--arg \
                json=true), $(b,--arg models=[\\\"model1\\\"]).  VALUE is \
                parsed as JSON when possible, else taken as a string.  \
                Repeatable.")
  in
  let wait_arg =
    Arg.(
      value & flag
      & info [ "wait" ]
          ~doc:"After submitting (or with $(b,--result)), block until the \
                job is terminal and print its final reply.")
  in
  let print_output_arg =
    Arg.(
      value & flag
      & info [ "print-output" ]
          ~doc:"Print only the job's report text instead of the reply \
                JSON; exits non-zero unless the job is done.")
  in
  let status_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "status" ] ~docv:"ID" ~doc:"Query one job's state.")
  in
  let result_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "result" ] ~docv:"ID" ~doc:"Fetch one job's result.")
  in
  let cancel_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "cancel" ] ~docv:"ID" ~doc:"Cancel one job.")
  in
  let stats_arg =
    Arg.(value & flag & info [ "stats" ] ~doc:"Fetch daemon statistics.")
  in
  let ping_arg =
    Arg.(value & flag & info [ "ping" ] ~doc:"Check the daemon is alive.")
  in
  let shutdown_arg =
    Arg.(value & flag & info [ "shutdown" ] ~doc:"Stop the daemon.")
  in
  let raw_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "raw" ] ~docv:"JSON" ~doc:"Send one raw request line.")
  in
  let connect_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "connect" ] ~docv:"HOST:PORT"
          ~doc:"Connect over TCP instead of the Unix socket.")
  in
  let token_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "token" ] ~docv:"SECRET"
          ~doc:"Shared-secret token presented as the first frame (needed \
                for TCP daemons started with one).")
  in
  let token_file_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "token-file" ] ~docv:"FILE"
          ~doc:"Read the token from FILE (trailing whitespace stripped).")
  in
  let retries_arg =
    Arg.(
      value
      & opt int 3
      & info [ "retries" ] ~docv:"N"
          ~doc:"Reconnect-and-retry attempts after transport failures or \
                busy rejections (jittered exponential backoff, honoring \
                the daemon's $(i,retry_after_ms) hint).  0 disables \
                retrying.")
  in
  let retry_backoff_arg =
    Arg.(
      value
      & opt int 100
      & info [ "retry-backoff" ] ~docv:"MS"
          ~doc:"Base backoff before the first retry; doubles per attempt \
                with +/-50% jitter, capped at 10s.")
  in
  let timeout_arg =
    Arg.(
      value
      & opt (some float) None
      & info [ "timeout" ] ~docv:"SECONDS"
          ~doc:"Per-request socket timeout; an expired request counts as \
                a failed attempt (and is retried when idempotent).")
  in
  let field_value raw =
    match Serve.Protocol.parse raw with
    | Ok v -> v
    | Error _ -> Serve.Protocol.String raw
  in
  let job_fields kind spec args =
    (* Litmus jobs run built-in shapes and take no spec; every other
       job kind refuses to run without one. *)
    let base =
      match (spec, kind) with
      | Some path, _ ->
        [ ("kind", Serve.Protocol.String kind);
          ("spec", Serve.Protocol.String (read_file path)) ]
      | None, "litmus" -> [ ("kind", Serve.Protocol.String kind) ]
      | None, _ -> or_die (Error "--submit needs --spec")
    in
    List.fold_left
      (fun fields arg ->
        match String.index_opt arg '=' with
        | None -> or_die (Error (Printf.sprintf "bad --arg %S (want KEY=VALUE)" arg))
        | Some i ->
          let key = String.sub arg 0 i in
          let value = String.sub arg (i + 1) (String.length arg - i - 1) in
          fields @ [ (key, field_value value) ])
      base args
  in
  let print_reply ~print_output raw =
    if not print_output then print_endline raw
    else
      match Serve.Protocol.parse raw with
      | Error msg -> or_die (Error ("unreadable reply: " ^ msg))
      | Ok reply ->
        (match Serve.Protocol.member "output" reply with
        | Some (Serve.Protocol.String out) -> print_string out
        | _ ->
          let state =
            match Serve.Protocol.member "state" reply with
            | Some (Serve.Protocol.String s) -> s
            | _ -> "unknown"
          in
          let error =
            match Serve.Protocol.member "error" reply with
            | Some (Serve.Protocol.String e) -> ": " ^ e
            | _ -> ""
          in
          or_die (Error (Printf.sprintf "job %s%s" state error)))
  in
  let run socket connect_to token token_file retries retry_backoff timeout
      submit spec id args wait print_output status result cancel stats ping
      shutdown raw =
    if retries < 0 then or_die (Error "--retries must be >= 0");
    if retry_backoff < 1 then or_die (Error "--retry-backoff must be >= 1");
    let token =
      match (token, token_file) with
      | Some _, Some _ ->
        or_die (Error "give only one of --token and --token-file")
      | Some t, None -> Some t
      | None, Some path -> Some (String.trim (read_file path))
      | None, None -> None
    in
    let endpoint =
      match connect_to with
      | None -> Serve.Server.Unix_path socket
      | Some s -> (
        match Serve.Server.endpoint_of_string s with
        | Ok (Serve.Server.Tcp _ as e) -> e
        | Ok (Serve.Server.Unix_path _) ->
          or_die (Error "--connect wants HOST:PORT (Unix sockets go via \
                         --socket)")
        | Error msg -> or_die (Error msg))
    in
    Random.self_init ();
    (* One cached connection, re-dialed transparently after transport
       failures.  Authentication is part of dialing: a rejected token is
       a permanent error, a dropped connection is a retryable one. *)
    let conn = ref None in
    let drop_conn () =
      match !conn with
      | Some (ic, _) ->
        conn := None;
        (try close_in_noerr ic with Sys_error _ -> ())
      | None -> ()
    in
    let dial () =
      match Serve.Server.connect_endpoint endpoint with
      | Error msg -> Error msg
      | Ok fd -> (
        (match timeout with
        | Some s when s > 0. -> (
          try
            Unix.setsockopt_float fd Unix.SO_RCVTIMEO s;
            Unix.setsockopt_float fd Unix.SO_SNDTIMEO s
          with Unix.Unix_error _ -> ())
        | _ -> ());
        let ic = Unix.in_channel_of_descr fd in
        let oc = Unix.out_channel_of_descr fd in
        match token with
        | None -> Ok (ic, oc)
        | Some tok -> (
          let auth =
            Serve.Protocol.to_string
              (Serve.Protocol.request_to_json (Serve.Protocol.Auth tok))
          in
          match
            output_string oc auth;
            output_char oc '\n';
            flush oc;
            input_line ic
          with
          | exception (End_of_file | Sys_error _) ->
            close_in_noerr ic;
            Error "connection closed during authentication"
          | reply -> (
            match Serve.Protocol.parse reply with
            | Ok r -> (
              match Serve.Protocol.member "ok" r with
              | Some (Serve.Protocol.Bool true) -> Ok (ic, oc)
              | _ ->
                (* a refused token never gets better by retrying *)
                close_in_noerr ic;
                or_die
                  (Error
                     (match Serve.Protocol.member "error" r with
                     | Some (Serve.Protocol.String e) -> e
                     | _ -> "authentication failed")))
            | Error msg ->
              close_in_noerr ic;
              Error ("unreadable authentication reply: " ^ msg))))
    in
    let backoff attempt hint_ms =
      let d =
        match hint_ms with
        | Some ms -> float_of_int ms /. 1000.
        | None ->
          float_of_int retry_backoff /. 1000.
          *. (2. ** float_of_int attempt)
          *. (0.5 +. Random.float 1.0)
      in
      Unix.sleepf (Float.min 10.0 d)
    in
    (* [resend] marks requests safe to re-issue after a failure past the
       send (submits under an id, polls, cancels); shutdown and raw
       lines only retry failures to connect. *)
    let rpc ?(resend = true) line =
      let rec attempt n =
        let fail ?hint msg =
          if n >= retries then or_die (Error msg)
          else begin
            backoff n hint;
            attempt (n + 1)
          end
        in
        match
          match !conn with Some c -> Ok c | None -> dial ()
        with
        | Error msg ->
          fail (Printf.sprintf "cannot connect to %s: %s"
                  (Serve.Server.endpoint_to_string endpoint) msg)
        | Ok ((ic, oc) as c) -> (
          conn := Some c;
          match
            output_string oc line;
            output_char oc '\n';
            flush oc
          with
          | exception Sys_error msg ->
            drop_conn ();
            fail ("connection lost: " ^ msg)
          | () -> (
            match input_line ic with
            | exception End_of_file ->
              drop_conn ();
              if resend then fail "daemon closed the connection"
              else or_die (Error "daemon closed the connection")
            | exception Sys_error msg ->
              drop_conn ();
              if resend then fail ("connection lost: " ^ msg)
              else or_die (Error ("connection lost: " ^ msg))
            | reply -> (
              (* structured backpressure: busy rejections tell us when
                 to come back *)
              match Serve.Protocol.parse reply with
              | Ok r
                when Serve.Protocol.member "ok" r
                     = Some (Serve.Protocol.Bool false) -> (
                match Serve.Protocol.member "retry_after_ms" r with
                | Some (Serve.Protocol.Int ms) when n < retries ->
                  fail ~hint:ms
                    (Printf.sprintf "daemon busy: %s" reply)
                | _ -> reply)
              | _ -> reply)))
      in
      attempt 0
    in
    let send_simple ?resend req =
      print_endline (rpc ?resend (Serve.Protocol.to_string req))
    in
    match (submit, status, result, cancel, stats, ping, shutdown, raw) with
    | Some kind, None, None, None, false, false, false, None ->
      let job = Serve.Protocol.Obj (job_fields kind spec args) in
      (* Retrying a submit is only safe under a stable id: pick one for
         the caller so a resent request lands on the same job. *)
      let id =
        match id with
        | Some _ -> id
        | None when retries > 0 ->
          Some
            (Printf.sprintf "c-%08x%08x" (Random.bits ()) (Random.bits ()))
        | None -> None
      in
      let submit_req =
        Serve.Protocol.request_to_json
          (Serve.Protocol.Submit { sb_id = id; sb_job = job })
      in
      let reply = rpc (Serve.Protocol.to_string submit_req) in
      if not wait then print_endline reply
      else begin
        let id =
          match Serve.Protocol.parse reply with
          | Ok r -> (
            match Serve.Protocol.member "id" r with
            | Some (Serve.Protocol.String id) -> id
            | _ ->
              or_die
                (Error
                   (match Serve.Protocol.member "error" r with
                   | Some (Serve.Protocol.String e) -> "submit failed: " ^ e
                   | _ -> "submit failed: " ^ reply)))
          | Error msg -> or_die (Error ("unreadable reply: " ^ msg))
        in
        let result_req =
          Serve.Protocol.request_to_json
            (Serve.Protocol.Result { rs_id = id; rs_wait = true })
        in
        (* The wait survives daemon restarts: the result poll is
           idempotent, so a dropped connection just re-requests it. *)
        print_reply ~print_output (rpc (Serve.Protocol.to_string result_req))
      end
    | None, Some id, None, None, false, false, false, None ->
      send_simple (Serve.Protocol.request_to_json (Serve.Protocol.Status id))
    | None, None, Some id, None, false, false, false, None ->
      let req =
        Serve.Protocol.request_to_json
          (Serve.Protocol.Result { rs_id = id; rs_wait = wait })
      in
      print_reply ~print_output (rpc (Serve.Protocol.to_string req))
    | None, None, None, Some id, false, false, false, None ->
      send_simple (Serve.Protocol.request_to_json (Serve.Protocol.Cancel id))
    | None, None, None, None, true, false, false, None ->
      send_simple (Serve.Protocol.request_to_json Serve.Protocol.Stats)
    | None, None, None, None, false, true, false, None ->
      send_simple (Serve.Protocol.request_to_json Serve.Protocol.Ping)
    | None, None, None, None, false, false, true, None ->
      send_simple ~resend:false
        (Serve.Protocol.request_to_json Serve.Protocol.Shutdown)
    | None, None, None, None, false, false, false, Some line ->
      print_endline (rpc ~resend:false line)
    | _ ->
      or_die
        (Error
           "give exactly one of --submit, --status, --result, --cancel, \
            --stats, --ping, --shutdown or --raw")
  in
  Cmd.v
    (Cmd.info "client"
       ~doc:
         "Talk to a running $(b,mrefine serve) daemon — over its Unix \
          socket or TCP ($(b,--connect), with $(b,--token)) — to submit \
          refine / lint / explore / faults jobs, poll or await their \
          results, cancel them, or fetch daemon statistics.  Transport \
          failures and busy rejections are retried with jittered \
          exponential backoff; submits pick a stable job id so retries \
          never double-execute work.")
    Term.(
      const run $ socket_arg $ connect_arg $ token_arg $ token_file_arg
      $ retries_arg $ retry_backoff_arg $ timeout_arg $ submit_arg
      $ spec_arg $ id_arg $ arg_arg $ wait_arg $ print_output_arg
      $ status_arg $ result_arg $ cancel_arg $ stats_arg $ ping_arg
      $ shutdown_arg $ raw_arg)

let chaos_cmd =
  let listen_arg =
    Arg.(
      value
      & opt string "127.0.0.1:7464"
      & info [ "listen" ] ~docv:"ENDPOINT"
          ~doc:"Where the proxy listens: HOST:PORT or a Unix-socket \
                path (TCP port 0 picks an ephemeral port).")
  in
  let upstream_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "upstream" ] ~docv:"ENDPOINT"
          ~doc:"The real daemon to forward to: HOST:PORT or a \
                Unix-socket path.")
  in
  let seed_arg =
    Arg.(
      value
      & opt int 0
      & info [ "seed" ] ~docv:"N"
          ~doc:"Fault-schedule seed.  The fault of connection $(i,i) is \
                a pure function of (seed, i), so a failing run replays \
                exactly from its seed.")
  in
  let run listen upstream seed =
    let parse s =
      match Serve.Server.endpoint_of_string s with
      | Ok e -> e
      | Error msg -> or_die (Error msg)
    in
    let upstream =
      match upstream with
      | Some u -> parse u
      | None -> or_die (Error "--upstream is required")
    in
    Sys.set_signal Sys.sigpipe Sys.Signal_ignore;
    let proxy =
      try
        Serve.Chaos.start
          ~log:(fun i fault ->
            Printf.eprintf "mrefine chaos: conn %d: %s\n%!" i
              (Serve.Chaos.fault_to_string fault))
          ~listen:(parse listen) ~upstream ~seed ()
      with Unix.Unix_error (err, _, msg) ->
        or_die
          (Error
             (Printf.sprintf "cannot listen on %s: %s%s" listen
                (Unix.error_message err)
                (if msg = "" then "" else " (" ^ msg ^ ")")))
    in
    (match Serve.Chaos.port proxy with
    | Some port ->
      Printf.eprintf "mrefine chaos: tcp port %d -> %s (seed %d)\n%!" port
        (match upstream with
        | Serve.Server.Unix_path p -> p
        | Serve.Server.Tcp { host; port } -> Printf.sprintf "%s:%d" host port)
        seed
    | None ->
      Printf.eprintf "mrefine chaos: %s (seed %d)\n%!" listen seed);
    let stop = ref false in
    let handler _ = stop := true in
    Sys.set_signal Sys.sigterm (Sys.Signal_handle handler);
    Sys.set_signal Sys.sigint (Sys.Signal_handle handler);
    while not !stop do
      Unix.sleepf 0.2
    done;
    Serve.Chaos.stop proxy
  in
  Cmd.v
    (Cmd.info "chaos"
       ~doc:
         "Run a seeded fault-injecting proxy in front of an $(b,mrefine \
          serve) daemon: connections are dropped mid-frame, torn, \
          delayed, fed garbage or reset, on a schedule that is a pure \
          function of $(b,--seed).  Used to verify that clients with \
          idempotent retries converge to byte-identical results under \
          transport failure.")
    Term.(const run $ listen_arg $ upstream_arg $ seed_arg)

let () =
  let info =
    Cmd.info "mrefine" ~version:"1.0.0"
      ~doc:"Model refinement for hardware-software codesign."
  in
  exit
    (Cmd.eval
       (Cmd.group info
          [ parse_cmd; graph_cmd; partition_cmd; refine_cmd; simulate_cmd;
            cosim_cmd; typecheck_cmd; lint_cmd; export_cmd; quality_cmd;
            demo_cmd; explore_cmd; faults_cmd; litmus_cmd; serve_cmd;
            client_cmd; chaos_cmd ]))
