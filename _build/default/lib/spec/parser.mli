(** Recursive-descent parser for the SpecCharts-like concrete syntax
    produced by {!Printer}. *)

open Ast

exception Parse_error of string * int
(** Message and line number. *)

val program_of_string : string -> (program, string) result
(** Parse a whole program.  The error string includes the line number. *)

val program_of_string_exn : string -> program
(** @raise Parse_error / Lexer.Lex_error on malformed input. *)

val expr_of_string_exn : string -> expr
(** Parse a standalone expression (used by tests and the round-trip
    property). *)

val stmts_of_string_exn : string -> stmt list
(** Parse a standalone statement list. *)
