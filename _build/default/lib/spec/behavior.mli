(** Operations on behavior trees: lookup, traversal and surgical
    replacement.  Behavior names are assumed unique within a program
    (checked by {!Program.validate}). *)

open Ast

val leaf : ?vars:var_decl list -> string -> stmt list -> behavior
(** Build a leaf behavior. *)

val seq : ?vars:var_decl list -> string -> seq_arm list -> behavior
(** Build a sequential composition. *)

val par : ?vars:var_decl list -> string -> behavior list -> behavior
(** Build a parallel composition. *)

val arm : ?transitions:transition list -> behavior -> seq_arm
(** Build a sequential arm; an empty transition list falls through to the
    next arm. *)

val is_leaf : behavior -> bool

val names : behavior -> string list
(** All behavior names in the tree, preorder. *)

val fold : ('a -> behavior -> 'a) -> 'a -> behavior -> 'a
(** Preorder fold over every behavior in the tree (including the root). *)

val find : string -> behavior -> behavior option
(** Find the behavior with the given name in the tree. *)

val parent_of : string -> behavior -> behavior option
(** The behavior whose body directly contains the named child. *)

val children : behavior -> behavior list
(** Direct sub-behaviors, in order. *)

val map : (behavior -> behavior) -> behavior -> behavior
(** Bottom-up rewriting of every behavior in the tree. *)

val map_leaf_stmts : (stmt list -> stmt list) -> behavior -> behavior
(** Rewrite the statement list of every leaf. *)

val replace : string -> behavior -> behavior -> behavior
(** [replace name b' tree] substitutes the behavior named [name] with [b'],
    preserving the transitions of the arm it occupies.
    @raise Not_found if no behavior has that name. *)

val transition_conds : behavior -> (string * expr) list
(** All TOC conditions in the tree, paired with the name of the sequential
    behavior owning the arc. *)

val all_var_decls : behavior -> (string * var_decl) list
(** Every local variable declaration in the tree, paired with the name of
    the declaring behavior. *)

val behavior_count : behavior -> int
(** Number of behaviors in the tree. *)

val stmt_count : behavior -> int
(** Total number of statements across all leaves. *)

val depth : behavior -> int
(** Height of the tree (a lone leaf has depth 1). *)
