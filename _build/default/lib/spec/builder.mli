(** Convenience constructors for writing specifications directly in OCaml
    (used by the workloads, the examples and the tests).  For behaviors
    see {!Behavior.leaf}, {!Behavior.seq}, {!Behavior.par} and
    {!Behavior.arm}. *)

open Ast

val var : ?init:value -> string -> ty -> var_decl
val signal : ?init:value -> string -> ty -> sig_decl

val int_var : ?width:int -> ?init:int -> string -> var_decl
(** Default width 16. *)

val bool_var : ?init:bool -> string -> var_decl
val int_signal : ?width:int -> ?init:int -> string -> sig_decl
val bool_signal : ?init:bool -> string -> sig_decl

val param_in : string -> ty -> param
val param_out : string -> ty -> param

val proc :
  ?params:param list -> ?vars:var_decl list -> string -> stmt list -> proc_decl

val goto : ?cond:expr -> string -> transition
(** TOC arc to a sibling arm. *)

val complete : ?cond:expr -> unit -> transition

val ( <-- ) : string -> expr -> stmt
(** Variable assignment, [x <-- e] is [x := e]. *)

val ( <== ) : string -> expr -> stmt
(** Signal assignment, delta-delayed. *)

val if_ : expr -> stmt list -> stmt list -> stmt
val while_ : expr -> stmt list -> stmt
val for_ : string -> expr -> expr -> stmt list -> stmt
val wait_until : expr -> stmt
val call : string -> arg list -> stmt
val emit : string -> expr -> stmt
