open Ast

(* The printer works on a Buffer with explicit indentation rather than
   Format boxes: the paper's size metric is "lines of specification", so
   line breaks must be fully deterministic. *)

let string_of_ty = function
  | TBool -> "bool"
  | TInt w -> Printf.sprintf "int<%d>" w
  | TArray (w, n) -> Printf.sprintf "int<%d>[%d]" w n

type ctx = { buf : Buffer.t; mutable indent : int }

let line ctx fmt =
  Printf.ksprintf
    (fun s ->
      Buffer.add_string ctx.buf (String.make (2 * ctx.indent) ' ');
      Buffer.add_string ctx.buf s;
      Buffer.add_char ctx.buf '\n')
    fmt

let with_indent ctx f =
  ctx.indent <- ctx.indent + 1;
  f ();
  ctx.indent <- ctx.indent - 1

let string_of_value v = Format.asprintf "%a" Expr.pp_value v
let string_of_expr e = Expr.to_string e

let init_suffix = function
  | None -> ""
  | Some v -> Printf.sprintf " := %s" (string_of_value v)

let emit_var ctx v =
  line ctx "var %s : %s%s;" v.v_name (string_of_ty v.v_ty) (init_suffix v.v_init)

let emit_signal ctx s =
  line ctx "signal %s : %s%s;" s.s_name (string_of_ty s.s_ty)
    (init_suffix s.s_init)

let string_of_arg = function
  | Arg_expr e -> string_of_expr e
  | Arg_var x -> "out " ^ x

let rec emit_stmts ctx stmts = List.iter (emit_stmt ctx) stmts

and emit_stmt ctx = function
  | Assign (x, e) -> line ctx "%s := %s;" x (string_of_expr e)
  | Assign_idx (x, i, e) ->
    line ctx "%s[%s] := %s;" x (string_of_expr i) (string_of_expr e)
  | Signal_assign (s, e) -> line ctx "%s <= %s;" s (string_of_expr e)
  | If (branches, els) ->
    begin match branches with
    | [] -> ()
    | (c0, body0) :: rest ->
      line ctx "if %s then" (string_of_expr c0);
      with_indent ctx (fun () -> emit_stmts ctx body0);
      List.iter
        (fun (c, body) ->
          line ctx "elsif %s then" (string_of_expr c);
          with_indent ctx (fun () -> emit_stmts ctx body))
        rest;
      if els <> [] then begin
        line ctx "else";
        with_indent ctx (fun () -> emit_stmts ctx els)
      end;
      line ctx "end if;"
    end
  | While (c, body) ->
    line ctx "while %s do" (string_of_expr c);
    with_indent ctx (fun () -> emit_stmts ctx body);
    line ctx "end while;"
  | For (i, lo, hi, body) ->
    line ctx "for %s := %s to %s do" i (string_of_expr lo) (string_of_expr hi);
    with_indent ctx (fun () -> emit_stmts ctx body);
    line ctx "end for;"
  | Wait_until c -> line ctx "wait until %s;" (string_of_expr c)
  | Call (p, args) ->
    line ctx "call %s(%s);" p (String.concat ", " (List.map string_of_arg args))
  | Emit (tag, e) -> line ctx "emit %S %s;" tag (string_of_expr e)
  | Skip -> line ctx "skip;"

let string_of_target = function Goto b -> b | Complete -> "complete"

let string_of_transition t =
  match t.t_cond with
  | None -> string_of_target t.t_target
  | Some c ->
    Printf.sprintf "(%s) %s" (string_of_expr c) (string_of_target t.t_target)

let rec emit_behavior ctx b =
  let kind =
    match b.b_body with Leaf _ -> "leaf" | Seq _ -> "seq" | Par _ -> "par"
  in
  line ctx "behavior %s : %s is" b.b_name kind;
  with_indent ctx (fun () -> List.iter (emit_var ctx) b.b_vars);
  line ctx "begin";
  with_indent ctx (fun () ->
      match b.b_body with
      | Leaf stmts -> emit_stmts ctx stmts
      | Par bs ->
        List.iter
          (fun child ->
            emit_behavior ctx child;
            line ctx ";")
          bs
      | Seq arms ->
        List.iter
          (fun a ->
            emit_behavior ctx a.a_behavior;
            match a.a_transitions with
            | [] -> line ctx ";"
            | ts ->
              line ctx "-> %s;"
                (String.concat ", " (List.map string_of_transition ts)))
          arms);
  line ctx "end behavior"

let emit_param prm =
  let mode = match prm.prm_mode with Mode_in -> "in" | Mode_out -> "out" in
  Printf.sprintf "%s : %s %s" prm.prm_name mode (string_of_ty prm.prm_ty)

let emit_proc ctx pr =
  line ctx "procedure %s (%s) is" pr.prc_name
    (String.concat "; " (List.map emit_param pr.prc_params));
  with_indent ctx (fun () -> List.iter (emit_var ctx) pr.prc_vars);
  line ctx "begin";
  with_indent ctx (fun () -> emit_stmts ctx pr.prc_body);
  line ctx "end procedure;"

let emit_program ctx p =
  line ctx "program %s is" p.p_name;
  with_indent ctx (fun () ->
      List.iter (emit_var ctx) p.p_vars;
      List.iter (emit_signal ctx) p.p_signals;
      if p.p_servers <> [] then
        line ctx "servers %s;" (String.concat ", " p.p_servers);
      List.iter (emit_proc ctx) p.p_procs;
      emit_behavior ctx p.p_top);
  line ctx "end program"

let run ?(indent = 0) f =
  let ctx = { buf = Buffer.create 1024; indent } in
  f ctx;
  Buffer.contents ctx.buf

let program_to_string p = run (fun ctx -> emit_program ctx p)
let behavior_to_string ?indent b = run ?indent (fun ctx -> emit_behavior ctx b)
let stmts_to_string ?indent stmts = run ?indent (fun ctx -> emit_stmts ctx stmts)

let line_count p =
  String.split_on_char '\n' (program_to_string p)
  |> List.filter (fun l -> String.trim l <> "")
  |> List.length

let pp_program ppf p = Format.pp_print_string ppf (program_to_string p)
let pp_behavior ppf b = Format.pp_print_string ppf (behavior_to_string b)
