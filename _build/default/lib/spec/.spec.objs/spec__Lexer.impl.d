lib/spec/lexer.ml: Buffer List Printf String
