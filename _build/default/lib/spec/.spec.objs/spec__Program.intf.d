lib/spec/program.mli: Ast
