lib/spec/expr.mli: Ast Format
