lib/spec/builder.ml: Ast Option
