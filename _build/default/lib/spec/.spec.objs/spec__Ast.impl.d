lib/spec/ast.ml:
