lib/spec/typecheck.ml: Ast Expr List Option Printf String
