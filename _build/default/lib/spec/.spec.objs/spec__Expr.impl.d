lib/spec/expr.ml: Ast Format List Stdlib String
