lib/spec/lexer.mli:
