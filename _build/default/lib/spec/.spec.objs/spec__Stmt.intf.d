lib/spec/stmt.mli: Ast
