lib/spec/behavior.ml: Ast List Stmt String
