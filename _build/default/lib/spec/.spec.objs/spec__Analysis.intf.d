lib/spec/analysis.mli: Ast
