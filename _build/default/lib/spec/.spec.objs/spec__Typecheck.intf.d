lib/spec/typecheck.mli: Ast
