lib/spec/parser.ml: Array Ast Lexer List Printf
