lib/spec/behavior.mli: Ast
