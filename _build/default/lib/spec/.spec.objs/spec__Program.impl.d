lib/spec/program.ml: Ast Behavior Expr List Printf Set String
