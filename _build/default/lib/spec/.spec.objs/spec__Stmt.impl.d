lib/spec/stmt.ml: Ast Expr List
