lib/spec/printer.ml: Ast Buffer Expr Format List Printf String
