lib/spec/analysis.ml: Ast Behavior Expr Hashtbl List Stmt String
