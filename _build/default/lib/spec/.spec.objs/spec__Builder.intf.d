lib/spec/builder.mli: Ast
