(** Operations on statement lists: traversal, renaming, read/write set
    extraction and rewriting.  These are the generic engines the
    refinement procedures are built on. *)

open Ast

val fold_exprs : ('a -> expr -> 'a) -> 'a -> stmt list -> 'a
(** Fold over every expression occurring in the statements, in source
    order (including loop bounds, branch conditions and call arguments). *)

val map_exprs : (expr -> expr) -> stmt list -> stmt list
(** Rewrite every expression in place. *)

val map_stmts : (stmt -> stmt list) -> stmt list -> stmt list
(** Bottom-up statement rewriting: sub-statements are rewritten first, then
    [f] is applied to each resulting statement and its expansion is spliced
    into the enclosing list. *)

val reads : stmt list -> string list
(** Names read by the statements (in expressions), without duplicates, in
    order of first occurrence. *)

val writes : stmt list -> string list
(** Names written: assignment targets, [for] indices and [out] arguments
    of calls.  Signal-assignment targets are {e not} included (see
    {!signal_writes}). *)

val signal_writes : stmt list -> string list
(** Targets of [<=] signal assignments. *)

val calls : stmt list -> string list
(** Names of called procedures, without duplicates. *)

val rename_refs : (string -> string) -> stmt list -> stmt list
(** Apply a renaming to every name occurrence: expression references,
    assignment targets, signal targets, [for] indices and [out]
    arguments. *)

val count : stmt list -> int
(** Total number of statement nodes, used by the size metrics. *)

val uses_name : string -> stmt list -> bool
(** Whether the given name occurs anywhere (read or written). *)
