(** Concrete-syntax pretty-printer.

    The output is the textual SpecCharts-like syntax accepted by
    {!Parser}: printing then parsing yields the original AST (a property
    checked by the test suite).  Every statement and every declaration is
    printed on its own line, so {!line_count} is the specification-size
    metric of the paper's Figure 10. *)

open Ast

val string_of_ty : ty -> string

val program_to_string : program -> string

val behavior_to_string : ?indent:int -> behavior -> string

val stmts_to_string : ?indent:int -> stmt list -> string

val line_count : program -> int
(** Number of non-empty lines in [program_to_string]. *)

val pp_program : Format.formatter -> program -> unit

val pp_behavior : Format.formatter -> behavior -> unit
