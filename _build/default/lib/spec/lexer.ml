type token =
  | IDENT of string
  | INT of int
  | STRING of string
  | KW of string
  | LPAREN | RPAREN
  | LBRACKET | RBRACKET
  | SEMI | COMMA | COLON
  | ASSIGN
  | ARROW
  | PLUS | MINUS | STAR | SLASH | PERCENT
  | EQ
  | NEQ
  | LT | LE | GT | GE
  | EOF

type located = { tok : token; lnum : int }

exception Lex_error of string * int

let keywords =
  [
    "program"; "is"; "var"; "signal"; "servers"; "procedure"; "begin"; "end";
    "behavior"; "leaf"; "seq"; "par"; "if"; "then"; "elsif"; "else";
    "while"; "do"; "for"; "to"; "wait"; "until"; "call"; "out"; "in";
    "emit"; "skip"; "complete"; "true"; "false"; "and"; "or"; "not";
    "bool"; "int";
  ]

let is_ident_start c = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'
let is_ident_char c = is_ident_start c || (c >= '0' && c <= '9')
let is_digit c = c >= '0' && c <= '9'

let tokenize src =
  let n = String.length src in
  let toks = ref [] in
  let lnum = ref 1 in
  let emit tok = toks := { tok; lnum = !lnum } :: !toks in
  let i = ref 0 in
  let peek k = if !i + k < n then Some src.[!i + k] else None in
  while !i < n do
    let c = src.[!i] in
    if c = '\n' then begin
      incr lnum;
      incr i
    end
    else if c = ' ' || c = '\t' || c = '\r' then incr i
    else if c = '-' && peek 1 = Some '-' then begin
      (* comment to end of line *)
      while !i < n && src.[!i] <> '\n' do incr i done
    end
    else if is_ident_start c then begin
      let start = !i in
      while !i < n && is_ident_char src.[!i] do incr i done;
      let word = String.sub src start (!i - start) in
      if List.mem word keywords then emit (KW word) else emit (IDENT word)
    end
    else if is_digit c then begin
      let start = !i in
      while !i < n && is_digit src.[!i] do incr i done;
      emit (INT (int_of_string (String.sub src start (!i - start))))
    end
    else if c = '"' then begin
      let buf = Buffer.create 16 in
      incr i;
      let rec scan () =
        if !i >= n then raise (Lex_error ("unterminated string", !lnum))
        else
          match src.[!i] with
          | '"' -> incr i
          | '\\' ->
            if !i + 1 >= n then raise (Lex_error ("unterminated string", !lnum))
            else begin
              let e = src.[!i + 1] in
              let decoded =
                match e with
                | 'n' -> '\n'
                | 't' -> '\t'
                | '"' -> '"'
                | '\\' -> '\\'
                | other -> other
              in
              Buffer.add_char buf decoded;
              i := !i + 2;
              scan ()
            end
          | ch ->
            Buffer.add_char buf ch;
            incr i;
            scan ()
      in
      scan ();
      emit (STRING (Buffer.contents buf))
    end
    else begin
      let two tok = emit tok; i := !i + 2 in
      let one tok = emit tok; incr i in
      match (c, peek 1) with
      | ':', Some '=' -> two ASSIGN
      | '-', Some '>' -> two ARROW
      | '<', Some '=' -> two LE
      | '>', Some '=' -> two GE
      | '/', Some '=' -> two NEQ
      | '(', _ -> one LPAREN
      | ')', _ -> one RPAREN
      | '[', _ -> one LBRACKET
      | ']', _ -> one RBRACKET
      | ';', _ -> one SEMI
      | ',', _ -> one COMMA
      | ':', _ -> one COLON
      | '+', _ -> one PLUS
      | '-', _ -> one MINUS
      | '*', _ -> one STAR
      | '/', _ -> one SLASH
      | '%', _ -> one PERCENT
      | '=', _ -> one EQ
      | '<', _ -> one LT
      | '>', _ -> one GT
      | _ ->
        raise (Lex_error (Printf.sprintf "illegal character %C" c, !lnum))
    end
  done;
  emit EOF;
  List.rev !toks

let token_to_string = function
  | IDENT s -> Printf.sprintf "identifier %s" s
  | INT n -> Printf.sprintf "integer %d" n
  | STRING s -> Printf.sprintf "string %S" s
  | KW k -> Printf.sprintf "keyword %s" k
  | LPAREN -> "(" | RPAREN -> ")"
  | LBRACKET -> "[" | RBRACKET -> "]"
  | SEMI -> ";" | COMMA -> "," | COLON -> ":"
  | ASSIGN -> ":=" | ARROW -> "->"
  | PLUS -> "+" | MINUS -> "-" | STAR -> "*" | SLASH -> "/" | PERCENT -> "%"
  | EQ -> "=" | NEQ -> "/=" | LT -> "<" | LE -> "<=" | GT -> ">" | GE -> ">="
  | EOF -> "end of input"
