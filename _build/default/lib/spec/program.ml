open Ast

let make ?(vars = []) ?(signals = []) ?(procs = []) ?(servers = []) name top =
  {
    p_name = name;
    p_vars = vars;
    p_signals = signals;
    p_procs = procs;
    p_top = top;
    p_servers = servers;
  }

let lookup_var p x = List.find_opt (fun v -> String.equal v.v_name x) p.p_vars

let lookup_signal p x =
  List.find_opt (fun s -> String.equal s.s_name x) p.p_signals

let lookup_proc p x =
  List.find_opt (fun pr -> String.equal pr.prc_name x) p.p_procs

let lookup_behavior p x = Behavior.find x p.p_top
let behavior_names p = Behavior.names p.p_top
let var_names p = List.map (fun v -> v.v_name) p.p_vars
let is_server p x = List.mem x p.p_servers

(* --- validation ------------------------------------------------------- *)

let duplicates names =
  let rec go seen dups = function
    | [] -> List.rev dups
    | x :: rest ->
      if List.mem x seen then
        if List.mem x dups then go seen dups rest else go seen (x :: dups) rest
      else go (x :: seen) dups rest
  in
  go [] [] names

let check_unique what names errs =
  List.fold_left
    (fun errs d -> Printf.sprintf "duplicate %s name: %s" what d :: errs)
    errs (duplicates names)

(* Scope = set of names visible as readable/writable data (variables,
   signals, parameters).  Scoping is by name; shadowing is allowed. *)
module Scope = Set.Make (String)

let scope_of_decls vars signals =
  let s = List.fold_left (fun s v -> Scope.add v.v_name s) Scope.empty vars in
  List.fold_left (fun s sd -> Scope.add sd.s_name s) s signals

let rec check_stmts p ~where scope errs stmts =
  List.fold_left (check_stmt p ~where scope) errs stmts

and check_expr ~where scope errs e =
  List.fold_left
    (fun errs x ->
      if Scope.mem x scope then errs
      else Printf.sprintf "%s: unbound reference %s" where x :: errs)
    errs (Expr.refs e)

and check_target ~where scope errs x =
  if Scope.mem x scope then errs
  else Printf.sprintf "%s: assignment to undeclared name %s" where x :: errs

and check_stmt p ~where scope errs = function
  | Assign (x, e) ->
    check_expr ~where scope (check_target ~where scope errs x) e
  | Assign_idx (x, i, e) ->
    let errs = check_target ~where scope errs x in
    let errs = check_expr ~where scope errs i in
    check_expr ~where scope errs e
  | Signal_assign (s, e) ->
    let errs =
      if Scope.mem s scope then errs
      else Printf.sprintf "%s: signal assignment to undeclared %s" where s :: errs
    in
    check_expr ~where scope errs e
  | If (branches, els) ->
    let errs =
      List.fold_left
        (fun errs (c, body) ->
          check_stmts p ~where scope (check_expr ~where scope errs c) body)
        errs branches
    in
    check_stmts p ~where scope errs els
  | While (c, body) ->
    check_stmts p ~where scope (check_expr ~where scope errs c) body
  | For (i, lo, hi, body) ->
    let errs = check_target ~where scope errs i in
    let errs = check_expr ~where scope errs lo in
    let errs = check_expr ~where scope errs hi in
    check_stmts p ~where scope errs body
  | Wait_until c -> check_expr ~where scope errs c
  | Call (name, args) ->
    begin match lookup_proc p name with
    | None -> Printf.sprintf "%s: call to unknown procedure %s" where name :: errs
    | Some pr ->
      let np = List.length pr.prc_params and na = List.length args in
      if np <> na then
        Printf.sprintf "%s: call to %s with %d arguments, expected %d" where
          name na np
        :: errs
      else
        List.fold_left2
          (fun errs prm a ->
            match (prm.prm_mode, a) with
            | Mode_in, Arg_expr e -> check_expr ~where scope errs e
            | Mode_out, Arg_var x -> check_target ~where scope errs x
            | Mode_in, Arg_var x ->
              (* Passing a variable to an [in] parameter is fine — it is
                 just the expression [Ref x]. *)
              check_expr ~where scope errs (Ref x)
            | Mode_out, Arg_expr _ ->
              Printf.sprintf
                "%s: call to %s passes an expression to out parameter %s"
                where name prm.prm_name
              :: errs)
          errs pr.prc_params args
    end
  | Emit (_, e) -> check_expr ~where scope errs e
  | Skip -> errs

let rec check_behavior p scope errs b =
  let scope =
    List.fold_left (fun s v -> Scope.add v.v_name s) scope b.b_vars
  in
  let where = Printf.sprintf "behavior %s" b.b_name in
  match b.b_body with
  | Leaf stmts -> check_stmts p ~where scope errs stmts
  | Par bs -> List.fold_left (check_behavior p scope) errs bs
  | Seq arms ->
    let sibling_names = List.map (fun a -> a.a_behavior.b_name) arms in
    let errs =
      List.fold_left
        (fun errs a ->
          List.fold_left
            (fun errs t ->
              let errs =
                match t.t_cond with
                | Some c -> check_expr ~where scope errs c
                | None -> errs
              in
              match t.t_target with
              | Complete -> errs
              | Goto target ->
                if List.mem target sibling_names then errs
                else
                  Printf.sprintf "%s: transition to non-sibling %s" where
                    target
                  :: errs)
            errs a.a_transitions)
        errs arms
    in
    List.fold_left
      (fun errs a -> check_behavior p scope errs a.a_behavior)
      errs arms

let check_proc p errs pr =
  let scope =
    List.fold_left
      (fun s prm -> Scope.add prm.prm_name s)
      (scope_of_decls p.p_vars p.p_signals)
      pr.prc_params
  in
  let scope =
    List.fold_left (fun s v -> Scope.add v.v_name s) scope pr.prc_vars
  in
  let where = Printf.sprintf "procedure %s" pr.prc_name in
  check_stmts p ~where scope errs pr.prc_body

let validate p =
  let errs = [] in
  let errs = check_unique "behavior" (behavior_names p) errs in
  let errs = check_unique "variable" (var_names p) errs in
  let errs =
    check_unique "signal" (List.map (fun s -> s.s_name) p.p_signals) errs
  in
  let errs =
    check_unique "procedure" (List.map (fun pr -> pr.prc_name) p.p_procs) errs
  in
  let errs =
    List.fold_left
      (fun errs srv ->
        match lookup_behavior p srv with
        | Some _ -> errs
        | None -> Printf.sprintf "server %s is not a behavior" srv :: errs)
      errs p.p_servers
  in
  let errs = List.fold_left (check_proc p) errs p.p_procs in
  let errs =
    check_behavior p (scope_of_decls p.p_vars p.p_signals) errs p.p_top
  in
  match errs with [] -> Ok () | _ -> Error (List.rev errs)

let validate_exn p =
  match validate p with
  | Ok () -> p
  | Error msgs -> invalid_arg (String.concat "; " msgs)
