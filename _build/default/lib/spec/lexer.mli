(** Hand-written lexer for the SpecCharts-like concrete syntax. *)

type token =
  | IDENT of string
  | INT of int
  | STRING of string
  | KW of string  (** one of the reserved keywords *)
  | LPAREN | RPAREN
  | LBRACKET | RBRACKET
  | SEMI | COMMA | COLON
  | ASSIGN        (** [:=] *)
  | ARROW         (** [->] *)
  | PLUS | MINUS | STAR | SLASH | PERCENT
  | EQ            (** [=] *)
  | NEQ           (** [/=] *)
  | LT | LE | GT | GE
  | EOF

type located = { tok : token; lnum : int }

exception Lex_error of string * int
(** Message and line number. *)

val keywords : string list

val tokenize : string -> located list
(** Tokenize a whole source text.  Comments run from [--] to end of line.
    @raise Lex_error on an illegal character or unterminated string. *)

val token_to_string : token -> string
