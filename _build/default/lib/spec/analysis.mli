(** Static analysis of specifications: which behaviors access which
    program-level variables, with static execution-count estimates.  This
    is the information the access graph (paper, Figure 1a) is derived
    from. *)

open Ast

type access_kind = Read | Write

type access = {
  ac_var : string;  (** a program-level variable *)
  ac_kind : access_kind;
  ac_count : int;  (** static execution-count estimate of the access site *)
}

val behavior_accesses :
  ?while_iterations:int -> program -> (string * access list) list
(** For every behavior in the tree (preorder), its aggregated accesses to
    program-level variables.  [while_iterations] (default 8) is the static
    trip-count estimate for [while] loops and non-constant [for] bounds;
    constant [for] bounds contribute their exact trip count.  Reads in TOC
    conditions are attributed to the arm's child behavior, mirroring where
    the refinement inserts the protocol call (Figure 6). *)

val accesses_of : ?while_iterations:int -> program -> string -> access list
(** Accesses of one named behavior. *)

val var_users : ?while_iterations:int -> program -> (string * string list) list
(** For every program variable, the behaviors accessing it. *)

val used_signal_names : program -> string list
(** All signals read or written anywhere in the program, sorted. *)
