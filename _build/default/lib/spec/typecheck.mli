(** Static type checking of specifications.

    Two type families: booleans and sized integers.  Widths are
    implementation hints for bus sizing, so any integer width is
    compatible with any other; booleans and integers never mix.  The
    checker validates expressions, statements, TOC conditions and
    procedure calls under proper scoping, and returns every violation
    found.  Refined outputs of the refiner are expected to typecheck —
    {!Core.Check.run} asserts it. *)

type error = string

val check : Ast.program -> (unit, error list) result
(** All violations found (empty = well typed).  Run {!Program.validate}
    first for name-resolution errors with better context. *)

val check_exn : Ast.program -> Ast.program
(** Identity when well typed.
    @raise Invalid_argument with the concatenated messages otherwise. *)
