open Ast

type access_kind = Read | Write

type access = {
  ac_var : string;  (** a program-level variable *)
  ac_kind : access_kind;
  ac_count : int;  (** static execution-count estimate of the access site *)
}

(* Aggregate a list of raw (var, kind, count) accesses per (var, kind). *)
let aggregate raw =
  let tbl = Hashtbl.create 16 in
  List.iter
    (fun (v, k, c) ->
      let key = (v, k) in
      let prev = match Hashtbl.find_opt tbl key with Some n -> n | None -> 0 in
      Hashtbl.replace tbl key (prev + c))
    raw;
  (* Deterministic order: by first occurrence in [raw]. *)
  let seen = Hashtbl.create 16 in
  List.filter_map
    (fun (v, k, _) ->
      if Hashtbl.mem seen (v, k) then None
      else begin
        Hashtbl.add seen (v, k) ();
        Some { ac_var = v; ac_kind = k; ac_count = Hashtbl.find tbl (v, k) }
      end)
    raw

(* Static loop-bound estimate: constant [for] bounds give the exact trip
   count, anything else falls back to [while_iterations]. *)
let for_trip_count ~while_iterations lo hi =
  match (Expr.eval_const lo, Expr.eval_const hi) with
  | Some (VInt a), Some (VInt b) -> max 0 (b - a + 1)
  | _ -> while_iterations

let rec raw_stmt_accesses ~while_iterations ~visible mult stmts =
  List.concat_map (raw_stmt ~while_iterations ~visible mult) stmts

and expr_reads ~visible mult e =
  List.filter_map
    (fun x -> if List.mem x visible then Some (x, Read, mult) else None)
    (Expr.refs e)

and write_of ~visible mult x =
  if List.mem x visible then [ (x, Write, mult) ] else []

and raw_stmt ~while_iterations ~visible mult = function
  | Assign (x, e) -> write_of ~visible mult x @ expr_reads ~visible mult e
  | Assign_idx (x, i, e) ->
    write_of ~visible mult x
    @ expr_reads ~visible mult i
    @ expr_reads ~visible mult e
  | Signal_assign (_, e) -> expr_reads ~visible mult e
  | If (branches, els) ->
    (* Branch bodies are weighted as if each branch executes once: the
       static estimator has no branch probabilities, and the paper's rate
       metric only needs relative magnitudes. *)
    List.concat_map
      (fun (c, body) ->
        expr_reads ~visible mult c
        @ raw_stmt_accesses ~while_iterations ~visible mult body)
      branches
    @ raw_stmt_accesses ~while_iterations ~visible mult els
  | While (c, body) ->
    let inner = mult * while_iterations in
    expr_reads ~visible inner c
    @ raw_stmt_accesses ~while_iterations ~visible inner body
  | For (i, lo, hi, body) ->
    let trips = for_trip_count ~while_iterations lo hi in
    let inner = mult * trips in
    write_of ~visible mult i
    @ expr_reads ~visible mult lo
    @ expr_reads ~visible mult hi
    @ raw_stmt_accesses ~while_iterations ~visible inner body
  | Wait_until c -> expr_reads ~visible mult c
  | Call (_, args) ->
    List.concat_map
      (function
        | Arg_expr e -> expr_reads ~visible mult e
        | Arg_var x -> write_of ~visible mult x)
      args
  | Emit (_, e) -> expr_reads ~visible mult e
  | Skip -> []

(* Walk the behavior tree collecting, for every behavior name, its accesses
   to the program-level variables in [visible].  Local declarations shadow
   program variables for the whole subtree.  TOC-condition reads are
   attributed to the arm's child behavior, because the refined protocol
   call is inserted at the end of that child (paper, Figure 6). *)
let behavior_accesses ?(while_iterations = 8) (p : program) :
    (string * access list) list =
  let result = ref [] in
  let rec walk visible b =
    let visible =
      List.filter
        (fun x -> not (List.exists (fun v -> String.equal v.v_name x) b.b_vars))
        visible
    in
    let own =
      match b.b_body with
      | Leaf stmts -> raw_stmt_accesses ~while_iterations ~visible 1 stmts
      | Seq _ | Par _ -> []
    in
    let toc_extra =
      match b.b_body with
      | Seq arms ->
        List.map
          (fun a ->
            let reads =
              List.concat_map
                (fun t ->
                  match t.t_cond with
                  | Some c -> expr_reads ~visible 1 c
                  | None -> [])
                a.a_transitions
            in
            (a.a_behavior.b_name, reads))
          arms
      | Leaf _ | Par _ -> []
    in
    result := (b.b_name, own) :: !result;
    List.iter
      (fun child ->
        walk visible child;
        match List.assoc_opt child.b_name toc_extra with
        | Some extra when extra <> [] ->
          result :=
            List.map
              (fun (n, acc) ->
                if String.equal n child.b_name then (n, acc @ extra)
                else (n, acc))
              !result
        | _ -> ())
      (Behavior.children b)
  in
  walk (List.map (fun v -> v.v_name) p.p_vars) p.p_top;
  List.rev_map (fun (n, raw) -> (n, aggregate raw)) !result

(** Accesses of one named behavior (leaf statement accesses plus the TOC
    reads attributed to it). *)
let accesses_of ?while_iterations p name =
  match List.assoc_opt name (behavior_accesses ?while_iterations p) with
  | Some acc -> acc
  | None -> []

(** For every program variable, the behaviors that read or write it
    (deduplicated, in tree preorder). *)
let var_users ?while_iterations p =
  let per_behavior = behavior_accesses ?while_iterations p in
  List.map
    (fun v ->
      let users =
        List.filter_map
          (fun (bname, accs) ->
            if List.exists (fun a -> String.equal a.ac_var v.v_name) accs then
              Some bname
            else None)
          per_behavior
      in
      (v.v_name, users))
    p.p_vars

(** Names of all signals read or written anywhere in the program
    (behaviors and procedures), used by refinement checks. *)
let used_signal_names p =
  let signal_names = List.map (fun s -> s.s_name) p.p_signals in
  let from_stmts stmts =
    List.filter (fun s -> List.mem s signal_names) (Stmt.reads stmts)
    @ Stmt.signal_writes stmts
  in
  let acc =
    Behavior.fold
      (fun acc b ->
        match b.b_body with
        | Leaf stmts -> from_stmts stmts @ acc
        | Seq _ | Par _ -> acc)
      [] p.p_top
  in
  let acc =
    List.fold_left (fun acc pr -> from_stmts pr.prc_body @ acc) acc p.p_procs
  in
  List.sort_uniq String.compare acc
