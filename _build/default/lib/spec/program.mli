(** Whole-program operations: construction, lookups and static
    validation. *)

open Ast

val make :
  ?vars:var_decl list ->
  ?signals:sig_decl list ->
  ?procs:proc_decl list ->
  ?servers:string list ->
  string ->
  behavior ->
  program
(** [make name top] builds a program named [name] with top behavior
    [top]. *)

val lookup_var : program -> string -> var_decl option
(** Program-level (partitionable) variable. *)

val lookup_signal : program -> string -> sig_decl option

val lookup_proc : program -> string -> proc_decl option

val lookup_behavior : program -> string -> behavior option

val behavior_names : program -> string list

val var_names : program -> string list
(** Names of program-level variables, in declaration order. *)

val is_server : program -> string -> bool

val validate : program -> (unit, string list) result
(** Static sanity checks: unique behavior / variable / signal / procedure
    names, resolvable TOC targets, resolvable references in every
    expression (respecting scoping: program variables and signals are
    global, behavior variables are visible in their subtree, procedure
    parameters and locals inside the procedure), and procedure calls with
    matching arity and argument modes.  Returns all violations found. *)

val validate_exn : program -> program
(** Identity when {!validate} succeeds.
    @raise Invalid_argument with the concatenated messages otherwise. *)
