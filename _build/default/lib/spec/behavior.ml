open Ast

let leaf ?(vars = []) name stmts = { b_name = name; b_vars = vars; b_body = Leaf stmts }
let seq ?(vars = []) name arms = { b_name = name; b_vars = vars; b_body = Seq arms }
let par ?(vars = []) name children =
  { b_name = name; b_vars = vars; b_body = Par children }

let arm ?(transitions = []) b = { a_behavior = b; a_transitions = transitions }

let is_leaf b = match b.b_body with Leaf _ -> true | Seq _ | Par _ -> false

let children b =
  match b.b_body with
  | Leaf _ -> []
  | Seq arms -> List.map (fun a -> a.a_behavior) arms
  | Par bs -> bs

let rec fold f acc b =
  let acc = f acc b in
  List.fold_left (fold f) acc (children b)

let names b = List.rev (fold (fun acc b -> b.b_name :: acc) [] b)

let find name b =
  fold
    (fun acc b ->
      match acc with
      | Some _ -> acc
      | None -> if String.equal b.b_name name then Some b else None)
    None b

let parent_of name b =
  fold
    (fun acc p ->
      match acc with
      | Some _ -> acc
      | None ->
        if List.exists (fun c -> String.equal c.b_name name) (children p) then
          Some p
        else None)
    None b

let rec map f b =
  let body =
    match b.b_body with
    | Leaf stmts -> Leaf stmts
    | Seq arms ->
      Seq (List.map (fun a -> { a with a_behavior = map f a.a_behavior }) arms)
    | Par bs -> Par (List.map (map f) bs)
  in
  f { b with b_body = body }

let map_leaf_stmts f b =
  map
    (fun b ->
      match b.b_body with
      | Leaf stmts -> { b with b_body = Leaf (f stmts) }
      | Seq _ | Par _ -> b)
    b

let replace name b' tree =
  let found = ref false in
  let tree =
    map
      (fun b ->
        if String.equal b.b_name name then begin
          found := true;
          b'
        end
        else b)
      tree
  in
  if !found then tree else raise Not_found

let transition_conds b =
  let conds_of acc b =
    match b.b_body with
    | Seq arms ->
      List.fold_left
        (fun acc a ->
          List.fold_left
            (fun acc t ->
              match t.t_cond with
              | Some c -> (b.b_name, c) :: acc
              | None -> acc)
            acc a.a_transitions)
        acc arms
    | Leaf _ | Par _ -> acc
  in
  List.rev (fold conds_of [] b)

let all_var_decls b =
  List.rev
    (fold
       (fun acc b ->
         List.fold_left (fun acc v -> (b.b_name, v) :: acc) acc b.b_vars)
       [] b)

let behavior_count b = fold (fun acc _ -> acc + 1) 0 b

let stmt_count b =
  fold
    (fun acc b ->
      match b.b_body with
      | Leaf stmts -> acc + Stmt.count stmts
      | Seq _ | Par _ -> acc)
    0 b

let rec depth b =
  match children b with
  | [] -> 1
  | cs -> 1 + List.fold_left (fun acc c -> max acc (depth c)) 0 cs
