(** Convenience constructors for writing specifications directly in OCaml
    (used by the workloads, the examples and the tests).  For behaviors see
    {!Behavior.leaf}, {!Behavior.seq}, {!Behavior.par} and {!Behavior.arm}. *)

open Ast

(** [var "x" (TInt 16) ~init:(VInt 0)] *)
let var ?init name ty = { v_name = name; v_ty = ty; v_init = init }

let signal ?init name ty = { s_name = name; s_ty = ty; s_init = init }

let int_var ?(width = 16) ?init name =
  var ?init:(Option.map (fun n -> VInt n) init) name (TInt width)

let bool_var ?init name =
  var ?init:(Option.map (fun b -> VBool b) init) name TBool

let int_signal ?(width = 16) ?init name =
  signal ?init:(Option.map (fun n -> VInt n) init) name (TInt width)

let bool_signal ?init name =
  signal ?init:(Option.map (fun b -> VBool b) init) name TBool

let param_in name ty = { prm_name = name; prm_mode = Mode_in; prm_ty = ty }
let param_out name ty = { prm_name = name; prm_mode = Mode_out; prm_ty = ty }

let proc ?(params = []) ?(vars = []) name body =
  { prc_name = name; prc_params = params; prc_vars = vars; prc_body = body }

(** [goto "B"] — unconditional transition. *)
let goto ?cond target = { t_cond = cond; t_target = Goto target }

let complete ?cond () = { t_cond = cond; t_target = Complete }

(** Statement shorthands. *)
let ( <-- ) x e = Assign (x, e)

let ( <== ) s e = Signal_assign (s, e)
let if_ c then_ else_ = If ([ (c, then_) ], else_)
let while_ c body = While (c, body)
let for_ i lo hi body = For (i, lo, hi, body)
let wait_until c = Wait_until c
let call name args = Call (name, args)
let emit tag e = Emit (tag, e)
