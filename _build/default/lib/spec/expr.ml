open Ast

let int n = Const (VInt n)
let bool b = Const (VBool b)
let tru = bool true
let fls = bool false
let ref_ x = Ref x

let binop op a b = Binop (op, a, b)
let ( + ) a b = binop Add a b
let ( - ) a b = binop Sub a b
let ( * ) a b = binop Mul a b
let ( / ) a b = binop Div a b
let ( mod ) a b = binop Mod a b
let ( = ) a b = binop Eq a b
let ( <> ) a b = binop Neq a b
let ( < ) a b = binop Lt a b
let ( <= ) a b = binop Le a b
let ( > ) a b = binop Gt a b
let ( >= ) a b = binop Ge a b
let ( && ) a b = binop And a b
let ( || ) a b = binop Or a b
let neg e = Unop (Neg, e)
let not_ e = Unop (Not, e)

exception Eval_error of string

let eval_error fmt = Format.kasprintf (fun s -> raise (Eval_error s)) fmt

let as_bool = function
  | VBool b -> b
  | VInt _ -> eval_error "expected a boolean value"

let as_int = function
  | VInt n -> n
  | VBool _ -> eval_error "expected an integer value"

let apply_binop op va vb =
  let arith f =
    VInt (f (as_int va) (as_int vb))
  and cmp f =
    VBool (f (as_int va) (as_int vb))
  in
  match op with
  | Add -> arith Stdlib.( + )
  | Sub -> arith Stdlib.( - )
  | Mul -> arith Stdlib.( * )
  | Div ->
    if Stdlib.( = ) (as_int vb) 0 then eval_error "division by zero"
    else arith Stdlib.( / )
  | Mod ->
    if Stdlib.( = ) (as_int vb) 0 then eval_error "modulo by zero"
    else arith Stdlib.( mod )
  | Eq -> VBool (Stdlib.( = ) va vb)
  | Neq -> VBool (Stdlib.( <> ) va vb)
  | Lt -> cmp Stdlib.( < )
  | Le -> cmp Stdlib.( <= )
  | Gt -> cmp Stdlib.( > )
  | Ge -> cmp Stdlib.( >= )
  | And -> VBool (Stdlib.( && ) (as_bool va) (as_bool vb))
  | Or -> VBool (Stdlib.( || ) (as_bool va) (as_bool vb))

let apply_unop op v =
  match op with
  | Neg -> VInt (Stdlib.( - ) 0 (as_int v))
  | Not -> VBool (Stdlib.not (as_bool v))

let rec eval ?(lookup_idx = fun x _ -> eval_error "cannot index %s here" x)
    ~lookup e =
  let eval = eval ~lookup_idx in
  match e with
  | Const v -> v
  | Ref x ->
    begin match lookup x with
    | Some v -> v
    | None -> eval_error "unbound reference %s" x
    end
  | Index (x, i) ->
    begin match lookup_idx x (as_int (eval ~lookup i)) with
    | Some v -> v
    | None -> eval_error "array access %s failed" x
    end
  | Binop (And, a, b) ->
    (* Short-circuit, so protocol guards such as [started && data = k]
       never evaluate the right operand on an idle bus. *)
    if as_bool (eval ~lookup a) then eval ~lookup b else VBool false
  | Binop (Or, a, b) ->
    if as_bool (eval ~lookup a) then VBool true else eval ~lookup b
  | Binop (op, a, b) -> apply_binop op (eval ~lookup a) (eval ~lookup b)
  | Unop (op, a) -> apply_unop op (eval ~lookup a)

let eval_const e =
  match eval ~lookup:(fun _ -> None) e with
  | v -> Some v
  | exception Eval_error _ -> None

let refs e =
  let rec go acc = function
    | Const _ -> acc
    | Ref x -> if List.mem x acc then acc else x :: acc
    | Index (x, i) ->
      let acc = if List.mem x acc then acc else x :: acc in
      go acc i
    | Binop (_, a, b) -> go (go acc a) b
    | Unop (_, a) -> go acc a
  in
  List.rev (go [] e)

let rec rename f = function
  | Const v -> Const v
  | Ref x -> Ref (f x)
  | Index (x, i) -> Index (f x, rename f i)
  | Binop (op, a, b) -> Binop (op, rename f a, rename f b)
  | Unop (op, a) -> Unop (op, rename f a)

let rec subst x r = function
  | Const v -> Const v
  | Ref y -> if String.equal x y then r else Ref y
  | Index (y, i) -> Index (y, subst x r i)
  | Binop (op, a, b) -> Binop (op, subst x r a, subst x r b)
  | Unop (op, a) -> Unop (op, subst x r a)

let rec size = function
  | Const _ | Ref _ -> 1
  | Index (_, i) -> Stdlib.( + ) 1 (size i)
  | Binop (_, a, b) -> Stdlib.( + ) (Stdlib.( + ) 1 (size a)) (size b)
  | Unop (_, a) -> Stdlib.( + ) 1 (size a)

(* Precedence levels, loosest binding first: or(1) and(2) cmp(3) add(4)
   mul(5) unary(6) atom(7). *)
let prec_of_binop = function
  | Or -> 1
  | And -> 2
  | Eq | Neq | Lt | Le | Gt | Ge -> 3
  | Add | Sub -> 4
  | Mul | Div | Mod -> 5

let binop_symbol = function
  | Add -> "+" | Sub -> "-" | Mul -> "*" | Div -> "/" | Mod -> "%"
  | Eq -> "=" | Neq -> "/=" | Lt -> "<" | Le -> "<=" | Gt -> ">" | Ge -> ">="
  | And -> "and" | Or -> "or"

let pp_value ppf = function
  | VBool true -> Format.pp_print_string ppf "true"
  | VBool false -> Format.pp_print_string ppf "false"
  | VInt n -> Format.pp_print_int ppf n

let pp ppf e =
  let open Format in
  let rec go ctx ppf e =
    match e with
    | Const v -> pp_value ppf v
    | Ref x -> pp_print_string ppf x
    | Index (x, i) -> fprintf ppf "%s[%a]" x (go 0) i
    | Unop (op, a) ->
      (* The operand prints at level 7 so a nested unary parenthesizes:
         [neg (neg x)] must not print as [--x], which would lex as a
         comment. *)
      let s = match op with Neg -> "-" | Not -> "not " in
      if Stdlib.( > ) ctx 6 then fprintf ppf "(%s%a)" s (go 7) a
      else fprintf ppf "%s%a" s (go 7) a
    | Binop (op, a, b) ->
      let p = prec_of_binop op in
      (* Arithmetic and logical operators are left associative (left child
         at [p], right at [p+1]); comparisons are non-associative, so both
         children parenthesize nested comparisons. *)
      let lctx =
        match op with
        | Eq | Neq | Lt | Le | Gt | Ge -> Stdlib.( + ) p 1
        | Add | Sub | Mul | Div | Mod | And | Or -> p
      in
      let body ppf () =
        fprintf ppf "%a %s %a" (go lctx) a (binop_symbol op)
          (go (Stdlib.( + ) p 1)) b
      in
      if Stdlib.( > ) ctx p then fprintf ppf "(%a)" body ()
      else body ppf ()
  in
  go 0 ppf e

let to_string e = Format.asprintf "%a" pp e
