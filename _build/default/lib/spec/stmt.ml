open Ast

let rec fold_exprs f acc stmts = List.fold_left (fold_expr_stmt f) acc stmts

and fold_expr_stmt f acc = function
  | Assign (_, e) -> f acc e
  | Assign_idx (_, i, e) -> f (f acc i) e
  | Signal_assign (_, e) -> f acc e
  | If (branches, els) ->
    let acc =
      List.fold_left
        (fun acc (c, body) -> fold_exprs f (f acc c) body)
        acc branches
    in
    fold_exprs f acc els
  | While (c, body) -> fold_exprs f (f acc c) body
  | For (_, lo, hi, body) -> fold_exprs f (f (f acc lo) hi) body
  | Wait_until c -> f acc c
  | Call (_, args) ->
    List.fold_left
      (fun acc -> function Arg_expr e -> f acc e | Arg_var _ -> acc)
      acc args
  | Emit (_, e) -> f acc e
  | Skip -> acc

let rec map_exprs f stmts = List.map (map_expr_stmt f) stmts

and map_expr_stmt f = function
  | Assign (x, e) -> Assign (x, f e)
  | Assign_idx (x, i, e) -> Assign_idx (x, f i, f e)
  | Signal_assign (s, e) -> Signal_assign (s, f e)
  | If (branches, els) ->
    let branches = List.map (fun (c, body) -> (f c, map_exprs f body)) branches in
    If (branches, map_exprs f els)
  | While (c, body) -> While (f c, map_exprs f body)
  | For (i, lo, hi, body) -> For (i, f lo, f hi, map_exprs f body)
  | Wait_until c -> Wait_until (f c)
  | Call (p, args) ->
    let args =
      List.map (function Arg_expr e -> Arg_expr (f e) | Arg_var x -> Arg_var x) args
    in
    Call (p, args)
  | Emit (tag, e) -> Emit (tag, f e)
  | Skip -> Skip

let rec map_stmts f stmts = List.concat_map (map_stmt f) stmts

and map_stmt f s =
  let s =
    match s with
    | If (branches, els) ->
      If
        ( List.map (fun (c, body) -> (c, map_stmts f body)) branches,
          map_stmts f els )
    | While (c, body) -> While (c, map_stmts f body)
    | For (i, lo, hi, body) -> For (i, lo, hi, map_stmts f body)
    | Assign _ | Assign_idx _ | Signal_assign _ | Wait_until _ | Call _
    | Emit _ | Skip -> s
  in
  f s

let dedup names =
  let rec go seen = function
    | [] -> []
    | x :: rest ->
      if List.mem x seen then go seen rest else x :: go (x :: seen) rest
  in
  go [] names

let reads stmts =
  dedup (List.rev (fold_exprs (fun acc e -> List.rev_append (Expr.refs e) acc) [] stmts))

let rec writes stmts = dedup (List.concat_map write_stmt stmts)

and write_stmt = function
  | Assign (x, _) -> [ x ]
  | Assign_idx (x, _, _) -> [ x ]
  | Signal_assign _ -> []
  | If (branches, els) ->
    List.concat_map (fun (_, body) -> writes body) branches @ writes els
  | While (_, body) -> writes body
  | For (i, _, _, body) -> i :: writes body
  | Wait_until _ -> []
  | Call (_, args) ->
    List.filter_map (function Arg_var x -> Some x | Arg_expr _ -> None) args
  | Emit _ -> []
  | Skip -> []

let rec signal_writes stmts = dedup (List.concat_map signal_write_stmt stmts)

and signal_write_stmt = function
  | Signal_assign (s, _) -> [ s ]
  | If (branches, els) ->
    List.concat_map (fun (_, body) -> signal_writes body) branches
    @ signal_writes els
  | While (_, body) -> signal_writes body
  | For (_, _, _, body) -> signal_writes body
  | Assign _ | Assign_idx _ | Wait_until _ | Call _ | Emit _ | Skip -> []

let rec calls stmts = dedup (List.concat_map call_stmt stmts)

and call_stmt = function
  | Call (p, _) -> [ p ]
  | If (branches, els) ->
    List.concat_map (fun (_, body) -> calls body) branches @ calls els
  | While (_, body) -> calls body
  | For (_, _, _, body) -> calls body
  | Assign _ | Assign_idx _ | Signal_assign _ | Wait_until _ | Emit _ | Skip ->
    []

let rec rename_refs f stmts = List.map (rename_stmt f) stmts

and rename_stmt f = function
  | Assign (x, e) -> Assign (f x, Expr.rename f e)
  | Assign_idx (x, i, e) -> Assign_idx (f x, Expr.rename f i, Expr.rename f e)
  | Signal_assign (s, e) -> Signal_assign (f s, Expr.rename f e)
  | If (branches, els) ->
    If
      ( List.map (fun (c, body) -> (Expr.rename f c, rename_refs f body)) branches,
        rename_refs f els )
  | While (c, body) -> While (Expr.rename f c, rename_refs f body)
  | For (i, lo, hi, body) ->
    For (f i, Expr.rename f lo, Expr.rename f hi, rename_refs f body)
  | Wait_until c -> Wait_until (Expr.rename f c)
  | Call (p, args) ->
    let rename_arg = function
      | Arg_expr e -> Arg_expr (Expr.rename f e)
      | Arg_var x -> Arg_var (f x)
    in
    Call (p, List.map rename_arg args)
  | Emit (tag, e) -> Emit (tag, Expr.rename f e)
  | Skip -> Skip

let rec count stmts = List.fold_left (fun acc s -> acc + count_stmt s) 0 stmts

and count_stmt = function
  | If (branches, els) ->
    1
    + List.fold_left (fun acc (_, body) -> acc + count body) 0 branches
    + count els
  | While (_, body) -> 1 + count body
  | For (_, _, _, body) -> 1 + count body
  | Assign _ | Assign_idx _ | Signal_assign _ | Wait_until _ | Call _ | Emit _
  | Skip -> 1

let uses_name x stmts =
  List.mem x (reads stmts) || List.mem x (writes stmts)
  || List.mem x (signal_writes stmts)
