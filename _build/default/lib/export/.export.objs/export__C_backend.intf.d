lib/export/c_backend.mli: Spec
