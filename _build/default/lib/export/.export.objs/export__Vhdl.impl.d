lib/export/vhdl.ml: Behavior Buffer Hashtbl List Printf Process_split Spec Stmt String
