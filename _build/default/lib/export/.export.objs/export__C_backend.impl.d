lib/export/c_backend.ml: Buffer List Printf Spec String
