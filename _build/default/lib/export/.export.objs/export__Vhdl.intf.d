lib/export/vhdl.mli: Spec
