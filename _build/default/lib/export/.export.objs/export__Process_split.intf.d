lib/export/process_split.mli: Ast Spec
