lib/export/process_split.ml: List Printf Program Spec
