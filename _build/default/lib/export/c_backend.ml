(** C backend — "software compilation" of a sequential specification (the
    role the paper assigns to the tools downstream of codesign).

    Scope: purely sequential specifications — a single process, no
    signals.  This is the shape of a functional model before refinement
    (and of a pure-software partition).  Hierarchical sequential
    composition with TOC arcs compiles to nested [switch]-based state
    machines; behavior-local variables are block-scoped so re-entering an
    arm re-initializes them, exactly like the reference simulator.

    The generated program prints one [EMIT tag value] line per [emit] and
    one [FINAL var value] line per program variable at the end, so its
    output can be compared verbatim against {!Sim.Engine} — the test suite
    compiles the output with the system C compiler and does exactly
    that. *)

open Spec.Ast

exception Unsupported of string

let unsupported fmt = Printf.ksprintf (fun s -> raise (Unsupported s)) fmt

(* C identifiers: prefix to dodge keywords and reserved names. *)
let cvar x = "v_" ^ x
let cproc x = "p_" ^ x

let escape_c s =
  let buf = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let cvalue = function
  | VInt n -> Printf.sprintf "%dLL" n
  | VBool true -> "1LL"
  | VBool false -> "0LL"

(* Fully parenthesized expression translation; booleans are 0/1. *)
let rec cexpr ~deref = function
  | Const v -> cvalue v
  | Ref x -> if List.mem x deref then Printf.sprintf "(*%s)" (cvar x) else cvar x
  | Index (x, i) -> Printf.sprintf "%s[%s]" (cvar x) (cexpr ~deref i)
  | Unop (Neg, e) -> Printf.sprintf "(-%s)" (cexpr ~deref e)
  | Unop (Not, e) -> Printf.sprintf "(!%s)" (cexpr ~deref e)
  | Binop (op, a, b) ->
    let sym =
      match op with
      | Add -> "+" | Sub -> "-" | Mul -> "*" | Div -> "/" | Mod -> "%"
      | Eq -> "==" | Neq -> "!=" | Lt -> "<" | Le -> "<=" | Gt -> ">" | Ge -> ">="
      | And -> "&&" | Or -> "||"
    in
    Printf.sprintf "(%s %s %s)" (cexpr ~deref a) sym (cexpr ~deref b)

type ctx = {
  buf : Buffer.t;
  mutable indent : int;
  mutable fresh : int;
  procs : proc_decl list;
}

let line ctx fmt =
  Printf.ksprintf
    (fun s ->
      Buffer.add_string ctx.buf (String.make (2 * ctx.indent) ' ');
      Buffer.add_string ctx.buf s;
      Buffer.add_char ctx.buf '\n')
    fmt

let with_indent ctx f =
  ctx.indent <- ctx.indent + 1;
  f ();
  ctx.indent <- ctx.indent - 1

let fresh ctx base =
  ctx.fresh <- ctx.fresh + 1;
  Printf.sprintf "%s_%d" base ctx.fresh

let decl_var ctx ~deref (v : var_decl) =
  let init =
    match v.v_init with Some i -> cvalue i | None -> cvalue (default_value v.v_ty)
  in
  ignore deref;
  match v.v_ty with
  | TArray (_, size) ->
    (* fill-initialize: designated initializers keep it one line *)
    if init = "0LL" then line ctx "long long %s[%d] = {0};" (cvar v.v_name) size
    else begin
      let fill = List.init size (fun _ -> init) in
      line ctx "long long %s[%d] = {%s};" (cvar v.v_name) size
        (String.concat ", " fill)
    end
  | TBool | TInt _ -> line ctx "long long %s = %s;" (cvar v.v_name) init

let rec emit_stmts ctx ~deref stmts = List.iter (emit_stmt ctx ~deref) stmts

and emit_stmt ctx ~deref = function
  | Skip -> line ctx ";"
  | Assign (x, e) ->
    if List.mem x deref then
      line ctx "(*%s) = %s;" (cvar x) (cexpr ~deref e)
    else line ctx "%s = %s;" (cvar x) (cexpr ~deref e)
  | Assign_idx (x, i, e) ->
    line ctx "%s[%s] = %s;" (cvar x) (cexpr ~deref i) (cexpr ~deref e)
  | Signal_assign (s, _) ->
    unsupported "signal assignment to %s: the C backend is for sequential software (no signals)" s
  | If (branches, els) ->
    List.iteri
      (fun i (c, body) ->
        line ctx "%sif (%s) {" (if i = 0 then "" else "} else ") (cexpr ~deref c);
        with_indent ctx (fun () -> emit_stmts ctx ~deref body))
      branches;
    if els <> [] then begin
      line ctx "} else {";
      with_indent ctx (fun () -> emit_stmts ctx ~deref els)
    end;
    line ctx "}"
  | While (c, body) ->
    line ctx "while (%s) {" (cexpr ~deref c);
    with_indent ctx (fun () -> emit_stmts ctx ~deref body);
    line ctx "}"
  | For (i, lo, hi, body) ->
    (* Bounds are evaluated once and a hidden iterator drives the loop,
       like the reference simulator: the body may freely overwrite the
       index variable (including via a nested loop on the same name)
       without changing the trip count. *)
    let it_tmp = fresh ctx "it" and hi_tmp = fresh ctx "hi" in
    line ctx "{";
    with_indent ctx (fun () ->
        line ctx "long long %s = %s, %s = %s;" it_tmp (cexpr ~deref lo) hi_tmp
          (cexpr ~deref hi);
        let iv = if List.mem i deref then Printf.sprintf "(*%s)" (cvar i) else cvar i in
        line ctx "for (; %s <= %s; %s++) {" it_tmp hi_tmp it_tmp;
        with_indent ctx (fun () ->
            line ctx "%s = %s;" iv it_tmp;
            emit_stmts ctx ~deref body);
        line ctx "}");
    line ctx "}"
  | Wait_until _ ->
    unsupported "wait until: the C backend is for sequential software (no signals)"
  | Call (name, args) ->
    let pr =
      match List.find_opt (fun pr -> String.equal pr.prc_name name) ctx.procs with
      | Some pr -> pr
      | None -> unsupported "call to unknown procedure %s" name
    in
    let actuals =
      List.map2
        (fun prm arg ->
          match (prm.prm_mode, arg) with
          | Mode_in, Arg_expr e -> cexpr ~deref e
          | Mode_in, Arg_var x -> cexpr ~deref (Ref x)
          | Mode_out, Arg_var x ->
            if List.mem x deref then cvar x else "&" ^ cvar x
          | Mode_out, Arg_expr _ ->
            unsupported "expression bound to out parameter of %s" name)
        pr.prc_params args
    in
    line ctx "%s(%s);" (cproc name) (String.concat ", " actuals)
  | Emit (tag, e) ->
    line ctx "coref_emit(\"%s\", %s);" (escape_c tag) (cexpr ~deref e)

(* Compile a Par-free behavior.  Sequential compositions become
   switch-based state machines; arm locals are block-scoped, so
   re-entering an arm (a TOC loop) re-initializes them. *)
let rec emit_behavior ctx ~deref (b : behavior) =
  match b.b_body with
  | Par _ -> unsupported "parallel composition %s" b.b_name
  | Leaf stmts ->
    line ctx "{ /* leaf %s */" b.b_name;
    with_indent ctx (fun () ->
        List.iter (decl_var ctx ~deref) b.b_vars;
        emit_stmts ctx ~deref stmts);
    line ctx "}"
  | Seq arms ->
    let st = fresh ctx "st" and live = fresh ctx "live" in
    line ctx "{ /* seq %s */" b.b_name;
    with_indent ctx (fun () ->
        List.iter (decl_var ctx ~deref) b.b_vars;
        line ctx "int %s = 0, %s = 1;" st live;
        line ctx "while (%s) {" live;
        with_indent ctx (fun () ->
            line ctx "switch (%s) {" st;
            List.iteri
              (fun i arm ->
                line ctx "case %d: { /* arm %s */" i arm.a_behavior.b_name;
                with_indent ctx (fun () ->
                    emit_behavior ctx ~deref arm.a_behavior;
                    emit_transitions ctx ~deref arms ~st ~live i arm);
                line ctx "} break;")
              arms;
            line ctx "default: %s = 0;" live;
            line ctx "}");
        line ctx "}");
    line ctx "}"

and emit_transitions ctx ~deref arms ~st ~live i arm =
  let index_of name =
    let rec go j = function
      | [] -> unsupported "transition to unknown arm %s" name
      | a :: rest ->
        if String.equal a.a_behavior.b_name name then j else go (j + 1) rest
    in
    go 0 arms
  in
  (* Arcs after the first unconditional one are dead. *)
  let rec live_prefix = function
    | [] -> []
    | t :: rest ->
      if t.t_cond = None then [ t ] else t :: live_prefix rest
  in
  match live_prefix arm.a_transitions with
  | [] ->
    if i + 1 < List.length arms then line ctx "%s = %d;" st (i + 1)
    else line ctx "%s = 0;" live
  | ts ->
    List.iteri
      (fun k t ->
        let target_code () =
          match t.t_target with
          | Complete -> line ctx "%s = 0;" live
          | Goto name -> line ctx "%s = %d;" st (index_of name)
        in
        match t.t_cond with
        | Some c ->
          line ctx "%sif (%s) {" (if k = 0 then "" else "} else ") (cexpr ~deref c);
          with_indent ctx target_code
        | None ->
          if k = 0 then target_code ()
          else begin
            line ctx "} else {";
            with_indent ctx target_code
          end)
      ts;
    (* If every arc is conditional and none fired, the composition
       completes. *)
    let all_conditional = List.for_all (fun t -> t.t_cond <> None) ts in
    if List.exists (fun t -> t.t_cond <> None) ts then begin
      if all_conditional then begin
        line ctx "} else {";
        with_indent ctx (fun () -> line ctx "%s = 0;" live)
      end;
      line ctx "}"
    end

let emit_proc ctx (pr : proc_decl) =
  let params =
    List.map
      (fun prm ->
        match prm.prm_mode with
        | Mode_in -> Printf.sprintf "long long %s" (cvar prm.prm_name)
        | Mode_out -> Printf.sprintf "long long *%s" (cvar prm.prm_name))
      pr.prc_params
  in
  let deref =
    List.filter_map
      (fun prm ->
        match prm.prm_mode with
        | Mode_out -> Some prm.prm_name
        | Mode_in -> None)
      pr.prc_params
  in
  line ctx "static void %s(%s) {" (cproc pr.prc_name)
    (if params = [] then "void" else String.concat ", " params);
  with_indent ctx (fun () ->
      List.iter (decl_var ctx ~deref) pr.prc_vars;
      emit_stmts ctx ~deref pr.prc_body);
  line ctx "}";
  line ctx ""

(** Generate a complete C program.
    @raise Unsupported on signals, parallel composition or waits. *)
let emit_program_exn (p : program) =
  if p.p_signals <> [] then
    unsupported "program %s declares signals; the C backend is for sequential software" p.p_name;
  let ctx = { buf = Buffer.create 4096; indent = 0; fresh = 0; procs = p.p_procs } in
  line ctx "/* generated by coref from specification %s */" p.p_name;
  line ctx "#include <stdio.h>";
  line ctx "";
  line ctx "static void coref_emit(const char *tag, long long v) {";
  line ctx "  printf(\"EMIT %%s %%lld\\n\", tag, v);";
  line ctx "}";
  line ctx "";
  List.iter
    (fun v ->
      let init =
        match v.v_init with Some i -> cvalue i | None -> cvalue (default_value v.v_ty)
      in
      match v.v_ty with
      | TArray (_, size) ->
        if init = "0LL" then
          line ctx "static long long %s[%d] = {0};" (cvar v.v_name) size
        else
          line ctx "static long long %s[%d] = {%s};" (cvar v.v_name) size
            (String.concat ", " (List.init size (fun _ -> init)))
      | TBool | TInt _ ->
        line ctx "static long long %s = %s;" (cvar v.v_name) init)
    p.p_vars;
  line ctx "";
  List.iter (emit_proc ctx) p.p_procs;
  line ctx "int main(void) {";
  with_indent ctx (fun () ->
      emit_behavior ctx ~deref:[] p.p_top;
      List.iter
        (fun v ->
          match v.v_ty with
          | TArray (_, size) ->
            for k = 0 to size - 1 do
              line ctx "printf(\"FINAL %s[%d] %%lld\\n\", %s[%d]);" v.v_name k
                (cvar v.v_name) k
            done
          | TBool | TInt _ ->
            line ctx "printf(\"FINAL %s %%lld\\n\", %s);" v.v_name
              (cvar v.v_name))
        p.p_vars;
      line ctx "return 0;");
  line ctx "}";
  Buffer.contents ctx.buf

let emit_program p =
  match emit_program_exn p with
  | code -> Ok code
  | exception Unsupported msg -> Error msg
