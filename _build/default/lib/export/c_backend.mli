(** C backend — "software compilation" of a sequential specification (the
    role the paper assigns to tools downstream of codesign).

    Scope: purely sequential specifications — a single process, no
    signals; the shape of a functional model before refinement.
    Hierarchical sequential composition with TOC arcs compiles to nested
    switch-based state machines; behavior-local variables are block-scoped
    so re-entering an arm re-initializes them; [for] loops use a hidden
    iterator so their trip count is fixed at entry — all exactly matching
    the reference simulator, which the test suite verifies by compiling
    the output with the system C compiler and diffing the [EMIT]/[FINAL]
    transcript. *)

exception Unsupported of string

val emit_program_exn : Spec.Ast.program -> string
(** @raise Unsupported on signals, waits or parallel composition. *)

val emit_program : Spec.Ast.program -> (string, string) result
