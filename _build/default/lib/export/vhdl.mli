(** VHDL backend — the refined implementation model printed as a
    behavioral VHDL architecture, the form the paper feeds to behavioral
    synthesis.  Signals become architecture signals; every concurrent
    process becomes a VHDL process; sequential composition with TOC arcs
    becomes a state-machine loop; storage shared between memory ports
    becomes shared variables; the generated protocol procedures are
    emitted into the declarative part of each calling process.  See the
    implementation header for the full mapping. *)

exception Unsupported of string

val emit_program_exn : Spec.Ast.program -> string
(** @raise Unsupported on parallel composition nested below sequential
    composition. *)

val emit_program : Spec.Ast.program -> (string, string) result
