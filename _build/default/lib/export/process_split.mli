(** Process splitting for the code-generation backends: flatten the
    behavior tree into its concurrent processes.  Parallel composition may
    only appear above sequential composition (the shape of refined outputs
    and of typical functional specifications); a [Par] nested beneath a
    [Seq] would need a fork/join protocol and is rejected. *)

open Spec

type proc_inst = {
  pi_name : string;  (** name of the process root behavior *)
  pi_behavior : Ast.behavior;  (** a Par-free subtree *)
  pi_shared_vars : Ast.var_decl list;
      (** variables declared on [Par] ancestors, shared with sibling
          processes (e.g. multi-port memory storage) *)
  pi_server : bool;  (** registered server, or inside one *)
}

val split : Ast.program -> (proc_inst list, string) result
