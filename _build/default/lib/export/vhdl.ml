(** VHDL backend — the refined implementation model printed as a
    behavioral VHDL architecture, the form the paper feeds to behavioral
    synthesis ("the refined specification ... can serve as an input for
    functional verification, behavioral synthesis or software compilation
    tools").

    Mapping:
    - the program becomes one entity plus one [behavioral] architecture;
    - signals become architecture signals ([boolean] / [integer]);
    - each concurrent process (see {!Process_split}) becomes a VHDL
      process; perpetual servers loop forever, terminating processes end
      in a final [wait];
    - sequential composition with TOC arcs becomes a state-machine loop
      (an integer state variable and a [case]), nested compositions nest;
    - behavior variables shared between sibling processes (memory storage
      serving several ports) become [shared variable]s;
    - the generated [MST_send_* ] / [MST_receive_*] protocol procedures
      are emitted into the declarative part of each process that calls
      them, where VHDL permits them to drive the bus signals;
    - [emit] becomes a [report];
    - [wait until c] is guarded by [if not c] because VHDL's [wait until]
      needs an event even when the condition already holds, whereas the
      specification semantics (and the reference simulator) proceed
      immediately. *)

open Spec
open Spec.Ast

exception Unsupported of string

let unsupported fmt = Printf.ksprintf (fun s -> raise (Unsupported s)) fmt

(* VHDL identifiers: lowercase-insensitive; avoid collisions with
   keywords by suffixing. *)
let keywords =
  [ "in"; "out"; "signal"; "variable"; "process"; "begin"; "end"; "is";
    "wait"; "report"; "entity"; "architecture"; "of"; "all"; "loop";
    "case"; "when"; "then"; "else"; "elsif"; "if"; "while"; "for"; "to" ]

let vid x =
  let lower = String.lowercase_ascii x in
  if List.mem lower keywords then x ^ "_v" else x

(* Arrays use a per-size named type [coref_arr_<n>], declared once in the
   architecture declarative part. *)
let arr_ty_name n = Printf.sprintf "coref_arr_%d" n

let vty = function
  | TBool -> "boolean"
  | TInt _ -> "integer"
  | TArray (_, n) -> arr_ty_name n

let vvalue = function
  | VBool true -> "true"
  | VBool false -> "false"
  | VInt n -> if n < 0 then Printf.sprintf "(%d)" n else string_of_int n

let rec vexpr = function
  | Const v -> vvalue v
  | Ref x -> vid x
  | Index (x, i) -> Printf.sprintf "%s(%s)" (vid x) (vexpr i)
  | Unop (Neg, e) -> Printf.sprintf "(-%s)" (vexpr e)
  | Unop (Not, e) -> Printf.sprintf "(not %s)" (vexpr e)
  | Binop (op, a, b) ->
    let sym =
      match op with
      | Add -> "+" | Sub -> "-" | Mul -> "*" | Div -> "/" | Mod -> "mod"
      | Eq -> "=" | Neq -> "/=" | Lt -> "<" | Le -> "<=" | Gt -> ">" | Ge -> ">="
      | And -> "and" | Or -> "or"
    in
    Printf.sprintf "(%s %s %s)" (vexpr a) sym (vexpr b)

type ctx = {
  buf : Buffer.t;
  mutable indent : int;
  mutable fresh : int;
  signals : string list;  (** names with signal (<=) assignment *)
  shared : string list;  (** names declared as shared variables *)
  procs : proc_decl list;
}

let line ctx fmt =
  Printf.ksprintf
    (fun s ->
      Buffer.add_string ctx.buf (String.make (2 * ctx.indent) ' ');
      Buffer.add_string ctx.buf s;
      Buffer.add_char ctx.buf '\n')
    fmt

let with_indent ctx f =
  ctx.indent <- ctx.indent + 1;
  f ();
  ctx.indent <- ctx.indent - 1

let fresh ctx base =
  ctx.fresh <- ctx.fresh + 1;
  Printf.sprintf "%s_%d" base ctx.fresh

let init_of (v : var_decl) =
  match v.v_init with Some i -> i | None -> default_value v.v_ty

(* Initializer literal: scalars print their value, arrays fill. *)
let vinit (v : var_decl) =
  match v.v_ty with
  | TArray _ -> Printf.sprintf "(others => %s)" (vvalue (init_of v))
  | TBool | TInt _ -> vvalue (init_of v)

let rec emit_stmts ctx stmts = List.iter (emit_stmt ctx) stmts

and emit_stmt ctx = function
  | Skip -> line ctx "null;"
  | Assign (x, e) ->
    if List.mem x ctx.signals then
      unsupported "variable assignment to signal %s" x
    else line ctx "%s := %s;" (vid x) (vexpr e)
  | Assign_idx (x, i, e) ->
    line ctx "%s(%s) := %s;" (vid x) (vexpr i) (vexpr e)
  | Signal_assign (s, e) -> line ctx "%s <= %s;" (vid s) (vexpr e)
  | If (branches, els) ->
    List.iteri
      (fun i (c, body) ->
        line ctx "%s %s then" (if i = 0 then "if" else "elsif") (vexpr c);
        with_indent ctx (fun () -> emit_stmts ctx body))
      branches;
    if els <> [] then begin
      line ctx "else";
      with_indent ctx (fun () -> emit_stmts ctx els)
    end;
    line ctx "end if;"
  | While (c, body) ->
    line ctx "while %s loop" (vexpr c);
    with_indent ctx (fun () -> emit_stmts ctx body);
    line ctx "end loop;"
  | For (i, lo, hi, body) ->
    (* VHDL for-loop parameters are implicitly declared and read-only; the
       specification's [for] writes a declared variable, and the reference
       semantics fix the trip count at loop entry, so compile to a while
       loop over a hidden iterator that re-assigns the index variable each
       iteration. *)
    let it_tmp = fresh ctx "it" and hi_tmp = fresh ctx "hi" in
    line ctx "%s := %s;" it_tmp (vexpr lo);
    line ctx "%s := %s;" hi_tmp (vexpr hi);
    line ctx "while %s <= %s loop" it_tmp hi_tmp;
    with_indent ctx (fun () ->
        line ctx "%s := %s;" (vid i) it_tmp;
        emit_stmts ctx body;
        line ctx "%s := %s + 1;" it_tmp it_tmp);
    line ctx "end loop;"
  | Wait_until c ->
    line ctx "if not (%s) then" (vexpr c);
    with_indent ctx (fun () -> line ctx "wait until %s;" (vexpr c));
    line ctx "end if;"
  | Call (name, args) ->
    let pr =
      match List.find_opt (fun pr -> String.equal pr.prc_name name) ctx.procs with
      | Some pr -> pr
      | None -> unsupported "call to unknown procedure %s" name
    in
    let actuals =
      List.map2
        (fun _prm arg ->
          match arg with Arg_expr e -> vexpr e | Arg_var x -> vid x)
        pr.prc_params args
    in
    line ctx "%s(%s);" (vid name) (String.concat ", " actuals)
  | Emit (tag, e) ->
    line ctx "report \"EMIT %s \" & integer'image(%s);" tag
      (match e with
      | Const (VBool _) | Unop (Not, _) | Binop ((Eq | Neq | Lt | Le | Gt | Ge | And | Or), _, _) ->
        Printf.sprintf "boolean'pos(%s)" (vexpr e)
      | _ -> vexpr e)

(* Compile a Par-free behavior into sequential VHDL statements.  State
   machines use pre-declared state/live variables. *)
let rec emit_behavior ctx b =
  match b.b_body with
  | Par _ -> unsupported "parallel composition %s below a process" b.b_name
  | Leaf stmts ->
    line ctx "-- leaf %s" b.b_name;
    List.iter
      (fun v ->
        line ctx "%s := %s; -- (re)initialize local" (vid v.v_name) (vinit v))
      b.b_vars;
    emit_stmts ctx stmts
  | Seq arms ->
    let st = fresh ctx "st" and live = fresh ctx "live" in
    line ctx "-- seq %s" b.b_name;
    List.iter
      (fun v -> line ctx "%s := %s;" (vid v.v_name) (vinit v))
      b.b_vars;
    line ctx "%s := 0; %s := true;" st live;
    line ctx "while %s loop" live;
    with_indent ctx (fun () ->
        line ctx "case %s is" st;
        List.iteri
          (fun i arm ->
            line ctx "when %d =>" i;
            with_indent ctx (fun () ->
                emit_behavior ctx arm.a_behavior;
                emit_transitions ctx arms ~st ~live i arm))
          arms;
        line ctx "when others => %s := false;" live;
        line ctx "end case;");
    line ctx "end loop;"

and emit_transitions ctx arms ~st ~live i arm =
  let index_of name =
    let rec go j = function
      | [] -> unsupported "transition to unknown arm %s" name
      | a :: rest ->
        if String.equal a.a_behavior.b_name name then j else go (j + 1) rest
    in
    go 0 arms
  in
  let rec live_prefix = function
    | [] -> []
    | t :: rest -> if t.t_cond = None then [ t ] else t :: live_prefix rest
  in
  let target_line t =
    match t.t_target with
    | Complete -> Printf.sprintf "%s := false;" live
    | Goto name -> Printf.sprintf "%s := %d;" st (index_of name)
  in
  match live_prefix arm.a_transitions with
  | [] ->
    if i + 1 < List.length arms then line ctx "%s := %d;" st (i + 1)
    else line ctx "%s := false;" live
  | [ ({ t_cond = None; _ } as t) ] -> line ctx "%s" (target_line t)
  | ts ->
    List.iteri
      (fun k t ->
        match t.t_cond with
        | Some c ->
          line ctx "%s %s then" (if k = 0 then "if" else "elsif") (vexpr c);
          with_indent ctx (fun () -> line ctx "%s" (target_line t))
        | None ->
          line ctx "else";
          with_indent ctx (fun () -> line ctx "%s" (target_line t)))
      ts;
    if List.for_all (fun t -> t.t_cond <> None) ts then begin
      line ctx "else";
      with_indent ctx (fun () -> line ctx "%s := false;" live)
    end;
    line ctx "end if;"

(* Variable declarations of a Par-free subtree, flattened into the process
   declarative part (initialization happens in the body so TOC re-entry
   re-initializes). *)
let rec subtree_vars b =
  b.b_vars
  @
  match b.b_body with
  | Leaf _ -> []
  | Seq arms -> List.concat_map (fun a -> subtree_vars a.a_behavior) arms
  | Par children -> List.concat_map subtree_vars children

let emit_proc_decl ctx (pr : proc_decl) =
  let params =
    List.map
      (fun prm ->
        let mode = match prm.prm_mode with Mode_in -> "in" | Mode_out -> "out" in
        Printf.sprintf "%s : %s %s" (vid prm.prm_name) mode (vty prm.prm_ty))
      pr.prc_params
  in
  if params = [] then line ctx "procedure %s is" (vid pr.prc_name)
  else line ctx "procedure %s (%s) is" (vid pr.prc_name) (String.concat "; " params);
  with_indent ctx (fun () ->
      List.iter
        (fun v ->
          line ctx "variable %s : %s := %s;" (vid v.v_name) (vty v.v_ty)
            (vinit v))
        pr.prc_vars);
  line ctx "begin";
  with_indent ctx (fun () ->
      if pr.prc_body = [] then line ctx "null;" else emit_stmts ctx pr.prc_body);
  line ctx "end procedure;"

let procs_called_by b procs =
  let names =
    Behavior.fold
      (fun acc b ->
        match b.b_body with
        | Leaf stmts -> Stmt.calls stmts @ acc
        | Seq _ | Par _ -> acc)
      [] b
  in
  List.filter (fun pr -> List.mem pr.prc_name names) procs

(** Generate a complete VHDL design unit.
    @raise Unsupported on parallel composition nested below sequential
    composition. *)
let emit_program_exn (p : program) =
  let split =
    match Process_split.split p with
    | Ok procs -> procs
    | Error msg -> unsupported "%s" msg
  in
  (* Shared variables: declared on Par nodes, visible to several
     processes. *)
  let shared =
    List.sort_uniq String.compare
      (List.concat_map
         (fun (pi : Process_split.proc_inst) ->
           List.map (fun v -> v.v_name) pi.Process_split.pi_shared_vars)
         split)
  in
  let ctx =
    {
      buf = Buffer.create 8192;
      indent = 0;
      fresh = 0;
      signals = List.map (fun s -> s.s_name) p.p_signals;
      shared;
      procs = p.p_procs;
    }
  in
  line ctx "-- generated by coref from specification %s" p.p_name;
  line ctx "entity %s is" (vid p.p_name);
  line ctx "end entity;";
  line ctx "";
  line ctx "architecture behavioral of %s is" (vid p.p_name);
  with_indent ctx (fun () ->
      List.iter
        (fun (s : sig_decl) ->
          let init =
            match s.s_init with Some i -> i | None -> default_value s.s_ty
          in
          line ctx "signal %s : %s := %s;" (vid s.s_name) (vty s.s_ty)
            (vvalue init))
        p.p_signals;
      (* Storage shared between the serving processes of one memory. *)
      let shared_decls =
        List.concat_map
          (fun (pi : Process_split.proc_inst) -> pi.Process_split.pi_shared_vars)
          split
      in
      (* Named array types, one per element count used anywhere. *)
      let arr_sizes = Hashtbl.create 4 in
      let note_ty = function
        | TArray (_, n) -> Hashtbl.replace arr_sizes n ()
        | TBool | TInt _ -> ()
      in
      List.iter (fun (v : var_decl) -> note_ty v.v_ty) p.p_vars;
      List.iter (fun (v : var_decl) -> note_ty v.v_ty) shared_decls;
      List.iter
        (fun (pi : Process_split.proc_inst) ->
          List.iter
            (fun (v : var_decl) -> note_ty v.v_ty)
            (subtree_vars pi.Process_split.pi_behavior))
        split;
      Hashtbl.iter
        (fun n () ->
          line ctx "type %s is array (0 to %d) of integer;" (arr_ty_name n)
            (n - 1))
        arr_sizes;
      let seen = Hashtbl.create 8 in
      List.iter
        (fun (v : var_decl) ->
          if not (Hashtbl.mem seen v.v_name) then begin
            Hashtbl.add seen v.v_name ();
            line ctx "shared variable %s : %s := %s;" (vid v.v_name)
              (vty v.v_ty) (vinit v)
          end)
        shared_decls;
      (* Program-level variables of an unrefined specification are global
         storage: emit them as shared variables too. *)
      List.iter
        (fun (v : var_decl) ->
          line ctx "shared variable %s : %s := %s;" (vid v.v_name) (vty v.v_ty)
            (vinit v))
        p.p_vars);
  line ctx "begin";
  with_indent ctx (fun () ->
      List.iter
        (fun (pi : Process_split.proc_inst) ->
          let b = pi.Process_split.pi_behavior in
          line ctx "";
          line ctx "%s : process" (vid b.b_name);
          with_indent ctx (fun () ->
              List.iter
                (fun v ->
                  line ctx "variable %s : %s := %s;" (vid v.v_name)
                    (vty v.v_ty) (vinit v))
                (subtree_vars b);
              (* Pre-declare the st/live/hi temporaries deterministically:
                 the body allocates them in this order. *)
              let save = ctx.fresh in
              let rec predeclare b =
                match b.b_body with
                | Leaf stmts -> predeclare_stmts stmts
                | Seq arms ->
                  let st = fresh ctx "st" and live = fresh ctx "live" in
                  line ctx "variable %s : integer := 0;" st;
                  line ctx "variable %s : boolean := true;" live;
                  List.iter (fun a -> predeclare a.a_behavior) arms
                | Par _ -> ()
              and predeclare_stmts stmts =
                List.iter
                  (fun s ->
                    match s with
                    | For (_, _, _, body) ->
                      let it = fresh ctx "it" in
                      let hi = fresh ctx "hi" in
                      line ctx "variable %s : integer := 0;" it;
                      line ctx "variable %s : integer := 0;" hi;
                      predeclare_stmts body
                    | While (_, body) -> predeclare_stmts body
                    | If (branches, els) ->
                      List.iter (fun (_, b) -> predeclare_stmts b) branches;
                      predeclare_stmts els
                    | Assign _ | Assign_idx _ | Signal_assign _ | Wait_until _
                    | Call _ | Emit _ | Skip -> ())
                  stmts
              in
              predeclare b;
              ctx.fresh <- save;
              List.iter (emit_proc_decl ctx) (procs_called_by b p.p_procs));
          line ctx "begin";
          with_indent ctx (fun () ->
              if pi.Process_split.pi_server then begin
                (* Perpetual server: its own loop already never ends; if
                   it somehow does, suspend. *)
                emit_behavior ctx b;
                line ctx "wait;"
              end
              else begin
                emit_behavior ctx b;
                line ctx "wait; -- process complete"
              end);
          line ctx "end process;")
        split);
  line ctx "end architecture;";
  Buffer.contents ctx.buf

let emit_program p =
  match emit_program_exn p with
  | code -> Ok code
  | exception Unsupported msg -> Error msg
