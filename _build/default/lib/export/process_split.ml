(** Process splitting for the code-generation backends.

    Both backends map each parallel composition onto truly concurrent
    carriers (VHDL processes / documented threads), so parallel
    composition may only appear {e above} sequential composition in the
    tree: the refined outputs have this shape (components, memories and
    interfaces are parallel at the top, everything below is sequential),
    and so do typical functional specifications.  A [Par] nested beneath a
    [Seq] would need a fork/join protocol and is rejected with a clear
    error. *)

open Spec
open Spec.Ast

type proc_inst = {
  pi_name : string;  (** name of the process root behavior *)
  pi_behavior : behavior;  (** a Par-free subtree *)
  pi_shared_vars : var_decl list;
      (** variables declared on [Par] ancestors, visible to (and shared
          with) sibling processes *)
  pi_server : bool;
}

let rec check_no_par b =
  match b.b_body with
  | Par _ -> Error (Printf.sprintf "parallel composition %s is nested below a sequential composition" b.b_name)
  | Leaf _ -> Ok ()
  | Seq arms ->
    List.fold_left
      (fun acc a ->
        match acc with Error _ -> acc | Ok () -> check_no_par a.a_behavior)
      (Ok ()) arms

(** Split a program's behavior tree into its concurrent processes. *)
let split (p : program) : (proc_inst list, string) result =
  let is_server name = Program.is_server p name in
  let rec walk shared inherited_server b =
    let server = inherited_server || is_server b.b_name in
    match b.b_body with
    | Par children ->
      let shared = shared @ b.b_vars in
      List.fold_left
        (fun acc c ->
          match acc with
          | Error _ -> acc
          | Ok procs ->
            begin match walk shared server c with
            | Ok more -> Ok (procs @ more)
            | Error e -> Error e
            end)
        (Ok []) children
    | Leaf _ | Seq _ ->
      begin match check_no_par b with
      | Error e -> Error e
      | Ok () ->
        Ok
          [
            {
              pi_name = b.b_name;
              pi_behavior = b;
              pi_shared_vars = shared;
              pi_server = server;
            };
          ]
      end
  in
  walk [] false p.p_top
