(** The signal store: current values plus the delta-delayed update queue.
    A signal assignment schedules the new value; {!commit} applies all
    scheduled updates at once (one delta cycle) and reports whether
    anything changed. *)

open Spec

type t = {
  current : (string, Ast.value) Hashtbl.t;
  scheduled : (string, Ast.value) Hashtbl.t;
}

let make (decls : Ast.sig_decl list) =
  let t = { current = Hashtbl.create 16; scheduled = Hashtbl.create 16 } in
  List.iter
    (fun (d : Ast.sig_decl) ->
      let init =
        match d.Ast.s_init with
        | Some v -> v
        | None -> Ast.default_value d.Ast.s_ty
      in
      Hashtbl.replace t.current d.Ast.s_name init)
    decls;
  t

let is_signal t name = Hashtbl.mem t.current name
let read t name = Hashtbl.find_opt t.current name

(** Schedule a delta-delayed update.  Returns false if the name is not a
    signal. *)
let schedule t name v =
  if is_signal t name then begin
    Hashtbl.replace t.scheduled name v;
    true
  end
  else false

let pending t = Hashtbl.length t.scheduled > 0

(** Apply all scheduled updates; returns the signals whose value actually
    changed (sorted by name, for determinism). *)
let commit_changes t =
  let changed = ref [] in
  Hashtbl.iter
    (fun name v ->
      begin match Hashtbl.find_opt t.current name with
      | Some old when old = v -> ()
      | Some _ | None -> changed := (name, v) :: !changed
      end;
      Hashtbl.replace t.current name v)
    t.scheduled;
  Hashtbl.reset t.scheduled;
  List.sort (fun (a, _) (b, _) -> String.compare a b) !changed

(** Apply all scheduled updates; true iff any signal value changed. *)
let commit t = commit_changes t <> []

let snapshot t =
  Hashtbl.fold (fun name v acc -> (name, v) :: acc) t.current []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)
