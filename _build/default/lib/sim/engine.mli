(** The discrete-event simulation engine.

    The behavior tree is instantiated as a tree of processes; every
    runnable leaf executes until it blocks on a [wait until], sequential
    compositions advance over their TOC arcs, and when everything is
    quiescent the scheduler commits the pending signal updates (one delta
    cycle) and re-evaluates the blocked waits.  Simulation ends when the
    design completes (every non-server process finished), deadlocks, or
    exhausts its step/delta budget. *)

open Spec

type config = {
  max_steps : int;  (** total interpreter steps across all processes *)
  max_deltas : int;
  slice : int;  (** interpreter steps per process per scheduling round *)
  trace_signals : bool;
      (** record every committed signal change (for waveform dumps) *)
}

val default_config : config

type outcome =
  | Completed
      (** every process that is not a registered server finished *)
  | Deadlock of string list  (** blocked process descriptions *)
  | Step_limit  (** the step or delta budget ran out *)

type result = {
  r_outcome : outcome;
  r_trace : Trace.event list;  (** the observable [emit] events, in order *)
  r_deltas : int;
  r_steps : int;
  r_final : (string * Ast.value) list;
      (** variable values at the end: program variables first, then every
          live behavior's declarations in preorder (first occurrence
          wins) *)
  r_signal_trace : (int * (string * Ast.value) list) list;
      (** with [trace_signals]: per delta cycle, the committed changes *)
}

val run : ?config:config -> Ast.program -> result
(** Simulate a validated program.
    @raise Interp.Run_error on dynamic errors (unbound names, type
    confusion) — run {!Spec.Program.validate} and {!Spec.Typecheck.check}
    first to rule these out statically. *)

val outcome_to_string : outcome -> string
