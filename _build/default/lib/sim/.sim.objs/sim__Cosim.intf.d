lib/sim/cosim.mli: Engine Format Spec
