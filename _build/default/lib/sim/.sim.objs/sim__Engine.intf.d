lib/sim/engine.mli: Ast Spec Trace
