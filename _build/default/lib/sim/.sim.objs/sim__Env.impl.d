lib/sim/env.ml: Array Ast Hashtbl List Option Spec
