lib/sim/vcd.mli: Engine Spec
