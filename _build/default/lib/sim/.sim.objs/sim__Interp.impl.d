lib/sim/interp.ml: Array Env Expr List Printf Sigtable Spec String Trace
