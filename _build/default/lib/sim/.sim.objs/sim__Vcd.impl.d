lib/sim/vcd.ml: Ast Buffer Bytes Char Engine List Printf Spec String
