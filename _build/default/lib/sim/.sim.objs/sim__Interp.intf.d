lib/sim/interp.mli: Ast Env Sigtable Spec Trace
