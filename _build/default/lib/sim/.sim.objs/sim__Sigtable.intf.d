lib/sim/sigtable.mli: Ast Spec
