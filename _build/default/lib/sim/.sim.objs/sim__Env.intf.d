lib/sim/env.mli: Ast Hashtbl Spec
