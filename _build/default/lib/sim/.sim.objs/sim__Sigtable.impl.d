lib/sim/sigtable.ml: Ast Hashtbl List Spec String
