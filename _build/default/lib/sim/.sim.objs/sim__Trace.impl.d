lib/sim/trace.ml: Ast Expr Format List Spec String
