lib/sim/engine.ml: Array Env Expr Hashtbl Interp List Option Printf Sigtable Spec String Trace
