lib/sim/trace.mli: Ast Format Spec
