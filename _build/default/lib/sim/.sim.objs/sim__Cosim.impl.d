lib/sim/cosim.ml: Ast Engine Expr Format List Printf Spec Trace
