(** VCD (Value Change Dump) waveform export, readable by GTKWave and other
    waveform viewers; one VCD timestep per delta cycle. *)

val of_result : Spec.Ast.program -> Engine.result -> string
(** Render the signal trace of a [trace_signals = true] run.  Booleans are
    1-bit wires, integers are sized registers; initial values dump at
    time 0. *)
