(** The leaf-statement interpreter: an explicit task-stack machine so a
    process can suspend at any [wait until] and resume later.  Variable
    assignments take effect immediately; signal assignments are scheduled
    on the {!Sigtable} and commit at the next delta cycle. *)

open Spec

exception Run_error of string
(** Dynamic error: unbound name, non-boolean condition, bad call. *)

type task =
  | Tstmts of Ast.stmt list
  | Twhile of Ast.expr * Ast.stmt list
  | Tfor of string * int * int * Ast.stmt list
      (** index, next value, upper bound *)
  | Twait of Ast.expr
  | Tpop_frame

type exec = {
  mutable stack : task list;  (** empty = finished *)
  mutable frame : Env.frame;
  ex_owner : string;  (** behavior name, for diagnostics *)
}

type context = {
  cx_signals : Sigtable.t;
  cx_trace : Trace.t;
  cx_procs : Ast.proc_decl list;
  mutable cx_delta : int;  (** current delta cycle, stamped onto events *)
}

val make_exec : owner:string -> frame:Env.frame -> Ast.stmt list -> exec

type status =
  | Progress  (** executed at least one step and can continue *)
  | Blocked of Ast.expr  (** stopped at an unsatisfied wait *)
  | Finished

val step : context -> exec -> status
(** One machine step. *)

val run : context -> exec -> fuel:int -> status * int
(** Run until the machine blocks, finishes, or exhausts [fuel] steps;
    returns the final status and the steps consumed. *)
