(** Variable environments: a chain of frames, one per behavior instance or
    procedure activation.  Variables are mutable cells; [out] procedure
    parameters alias the caller's cell. *)

open Spec

type frame = {
  f_vars : (string, Ast.value ref) Hashtbl.t;
  f_arrays : (string, Ast.value array) Hashtbl.t;
  f_parent : frame option;
  f_behavior : string;  (** name of the owning behavior / procedure *)
}

let init_of (d : Ast.var_decl) =
  match d.Ast.v_init with
  | Some v -> v
  | None -> Ast.default_value d.Ast.v_ty

let make ?parent ~owner decls =
  let f =
    {
      f_vars = Hashtbl.create 8;
      f_arrays = Hashtbl.create 2;
      f_parent = parent;
      f_behavior = owner;
    }
  in
  List.iter
    (fun (d : Ast.var_decl) ->
      match d.Ast.v_ty with
      | Ast.TArray (_, size) ->
        Hashtbl.replace f.f_arrays d.Ast.v_name (Array.make size (init_of d))
      | Ast.TBool | Ast.TInt _ ->
        Hashtbl.replace f.f_vars d.Ast.v_name (ref (init_of d)))
    decls;
  f

let bind f name cell = Hashtbl.replace f.f_vars name cell

let rec find_cell f name =
  match Hashtbl.find_opt f.f_vars name with
  | Some cell -> Some cell
  | None ->
    begin match f.f_parent with
    | Some parent -> find_cell parent name
    | None -> None
    end

let lookup f name = Option.map (fun cell -> !cell) (find_cell f name)

let assign f name v =
  match find_cell f name with
  | Some cell ->
    cell := v;
    true
  | None -> false

(** The innermost array binding for the name, walking the parent chain. *)
let rec find_array f name =
  match Hashtbl.find_opt f.f_arrays name with
  | Some arr -> Some arr
  | None ->
    begin match f.f_parent with
    | Some parent -> find_array parent name
    | None -> None
    end

(** Re-run the initializers of the given declarations in this exact frame
    (used by the simulator when a sequential arm is re-entered). *)
let reinitialize f decls =
  List.iter
    (fun (d : Ast.var_decl) ->
      let init = init_of d in
      match d.Ast.v_ty with
      | Ast.TArray (_, size) ->
        Hashtbl.replace f.f_arrays d.Ast.v_name (Array.make size init)
      | Ast.TBool | Ast.TInt _ ->
        begin match Hashtbl.find_opt f.f_vars d.Ast.v_name with
        | Some cell -> cell := init
        | None -> Hashtbl.replace f.f_vars d.Ast.v_name (ref init)
        end)
    decls
