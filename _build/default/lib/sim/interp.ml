(** The leaf-statement interpreter: an explicit task-stack machine so a
    process can suspend at any [wait until] and resume later.  Variable
    assignments take effect immediately; signal assignments are scheduled
    on the {!Sigtable} and take effect at the next delta cycle. *)

open Spec
open Spec.Ast

exception Run_error of string

let run_error fmt = Printf.ksprintf (fun s -> raise (Run_error s)) fmt

type task =
  | Tstmts of stmt list
  | Twhile of expr * stmt list
  | Tfor of string * int * int * stmt list  (** index, next value, hi *)
  | Twait of expr
  | Tpop_frame

type exec = {
  mutable stack : task list;
  mutable frame : Env.frame;
  ex_owner : string;  (** behavior name, for diagnostics *)
}

type context = {
  cx_signals : Sigtable.t;
  cx_trace : Trace.t;
  cx_procs : proc_decl list;
  mutable cx_delta : int;  (** current delta cycle, stamped onto events *)
}

let make_exec ~owner ~frame stmts =
  { stack = [ Tstmts stmts ]; frame; ex_owner = owner }

let lookup cx exec name =
  match Env.lookup exec.frame name with
  | Some v -> Some v
  | None -> Sigtable.read cx.cx_signals name

let lookup_idx exec name i =
  match Env.find_array exec.frame name with
  | Some arr ->
    if i < 0 || i >= Array.length arr then
      run_error "%s: index %d out of bounds for %s (size %d)" exec.ex_owner i
        name (Array.length arr)
    else Some arr.(i)
  | None -> run_error "%s: %s is not an array" exec.ex_owner name

let eval cx exec e =
  Expr.eval ~lookup_idx:(lookup_idx exec) ~lookup:(lookup cx exec) e

let eval_bool cx exec e =
  match eval cx exec e with
  | VBool b -> b
  | VInt _ ->
    run_error "%s: condition %s is not boolean" exec.ex_owner (Expr.to_string e)

let eval_int cx exec e =
  match eval cx exec e with
  | VInt n -> n
  | VBool _ ->
    run_error "%s: expression %s is not an integer" exec.ex_owner
      (Expr.to_string e)

let find_proc cx name =
  match List.find_opt (fun pr -> String.equal pr.prc_name name) cx.cx_procs with
  | Some pr -> pr
  | None -> run_error "call to unknown procedure %s" name

(* Enter a procedure: in-parameters get fresh cells with the evaluated
   arguments, out-parameters alias the caller's cell, locals get fresh
   cells.  The procedure frame's parent is the caller frame, so globals
   and signals stay reachable. *)
let enter_proc cx exec name args =
  let pr = find_proc cx name in
  if List.length pr.prc_params <> List.length args then
    run_error "%s: call to %s with wrong arity" exec.ex_owner name;
  let frame = Env.make ~parent:exec.frame ~owner:name pr.prc_vars in
  List.iter2
    (fun prm arg ->
      match (prm.prm_mode, arg) with
      | Mode_in, Arg_expr e ->
        Env.bind frame prm.prm_name (ref (eval cx exec e))
      | Mode_in, Arg_var x ->
        begin match lookup cx exec x with
        | Some v -> Env.bind frame prm.prm_name (ref v)
        | None -> run_error "%s: unbound argument %s" exec.ex_owner x
        end
      | Mode_out, Arg_var x ->
        begin match Env.find_cell exec.frame x with
        | Some cell -> Env.bind frame prm.prm_name cell
        | None ->
          run_error "%s: out argument %s is not a variable" exec.ex_owner x
        end
      | Mode_out, Arg_expr _ ->
        run_error "%s: expression passed to out parameter %s of %s"
          exec.ex_owner prm.prm_name name)
    pr.prc_params args;
  exec.frame <- frame;
  exec.stack <- Tstmts pr.prc_body :: Tpop_frame :: exec.stack

type status =
  | Progress  (** executed at least one step and can continue *)
  | Blocked of expr  (** stopped at an unsatisfied wait *)
  | Finished

(* Execute one statement (the head of the stack is already popped). *)
let exec_stmt cx exec s =
  match s with
  | Skip -> ()
  | Assign (x, e) ->
    let v = eval cx exec e in
    if not (Env.assign exec.frame x v) then
      run_error "%s: assignment to unbound variable %s" exec.ex_owner x
  | Assign_idx (x, i, e) ->
    let i = eval_int cx exec i in
    let v = eval cx exec e in
    begin match Env.find_array exec.frame x with
    | Some arr ->
      if i < 0 || i >= Array.length arr then
        run_error "%s: index %d out of bounds for %s (size %d)" exec.ex_owner
          i x (Array.length arr)
      else arr.(i) <- v
    | None -> run_error "%s: %s is not an array" exec.ex_owner x
    end
  | Signal_assign (sg, e) ->
    let v = eval cx exec e in
    if not (Sigtable.schedule cx.cx_signals sg v) then
      run_error "%s: signal assignment to non-signal %s" exec.ex_owner sg
  | If (branches, els) ->
    let rec choose = function
      | [] -> exec.stack <- Tstmts els :: exec.stack
      | (c, body) :: rest ->
        if eval_bool cx exec c then exec.stack <- Tstmts body :: exec.stack
        else choose rest
    in
    choose branches
  | While (c, body) -> exec.stack <- Twhile (c, body) :: exec.stack
  | For (i, lo, hi, body) ->
    let lo = eval_int cx exec lo and hi = eval_int cx exec hi in
    exec.stack <- Tfor (i, lo, hi, body) :: exec.stack
  | Wait_until c -> exec.stack <- Twait c :: exec.stack
  | Call (name, args) -> enter_proc cx exec name args
  | Emit (tag, e) ->
    Trace.record cx.cx_trace ~delta:cx.cx_delta ~tag ~value:(eval cx exec e)

(* One machine step.  Returns [Progress] unless the machine is blocked or
   finished. *)
let step cx exec =
  match exec.stack with
  | [] -> Finished
  | task :: rest ->
    begin match task with
    | Tstmts [] ->
      exec.stack <- rest;
      Progress
    | Tstmts (s :: more) ->
      exec.stack <- Tstmts more :: rest;
      exec_stmt cx exec s;
      Progress
    | Twhile (c, body) ->
      if eval_bool cx exec c then begin
        exec.stack <- Tstmts body :: task :: rest;
        Progress
      end
      else begin
        exec.stack <- rest;
        Progress
      end
    | Tfor (i, cur, hi, body) ->
      if cur > hi then begin
        exec.stack <- rest;
        Progress
      end
      else begin
        if not (Env.assign exec.frame i (VInt cur)) then
          run_error "%s: for index %s is not a variable" exec.ex_owner i;
        exec.stack <- Tstmts body :: Tfor (i, cur + 1, hi, body) :: rest;
        Progress
      end
    | Twait c ->
      if eval_bool cx exec c then begin
        exec.stack <- rest;
        Progress
      end
      else Blocked c
    | Tpop_frame ->
      begin match exec.frame.Env.f_parent with
      | Some parent ->
        exec.frame <- parent;
        exec.stack <- rest;
        Progress
      | None -> run_error "%s: frame underflow" exec.ex_owner
      end
    end

(** Run the machine until it blocks, finishes, or exhausts [fuel] steps.
    Returns the final status and the number of steps consumed. *)
let run cx exec ~fuel =
  let rec go steps =
    if steps >= fuel then (Progress, steps)
    else
      match step cx exec with
      | Progress -> go (steps + 1)
      | Blocked c -> (Blocked c, steps)
      | Finished -> (Finished, steps)
  in
  go 0
