(** Per-statement execution-cost model.

    Software estimation on processors follows the component's per-statement
    cycle attributes (in the spirit of the paper's reference [8], "Software
    estimation from executable specifications"); hardware estimation on
    ASICs charges the datapath operation count of each expression.
    Branches cost their worst alternative; loops multiply by their constant
    trip count or by the configured [while_iterations] estimate. *)

type config = { while_iterations : int }

val default_config : config
(** 8 estimated iterations per [while] loop / non-constant [for] bound. *)

val stmt_cycles :
  ?config:config -> Arch.Component.t -> Spec.Ast.stmt list -> float
(** Estimated execution cycles of a statement list on the component.
    @raise Invalid_argument for memory components, which execute no code. *)
