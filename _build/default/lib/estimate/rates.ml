(** Channel transfer rates (paper, Section 5; definition from its
    reference [13]): the rate at which data is sent over a channel during
    the lifetime of the behaviors communicating over it,

    {[ rate(ch) = bits(ch) * accesses(ch) / lifetime(behavior(ch)) ]}

    reported in Mbit/s. *)

open Agraph

type env = {
  program : Spec.Ast.program;
  alloc : Arch.Allocation.t;
  part : Partitioning.Partition.t;
  config : Cost_model.config;
}

let make_env ?(config = Cost_model.default_config) program alloc part =
  { program; alloc; part; config }

(** Transfer rate of one data channel in Mbit/s. *)
let channel_rate_mbps env (e : Access_graph.data_edge) =
  let lifetime =
    Lifetime.partitioned_behavior_seconds ~config:env.config env.program
      env.alloc env.part e.Access_graph.de_behavior
  in
  let bits = float_of_int (Access_graph.edge_bits e) in
  bits /. lifetime /. 1e6

(** Sum of channel rates for a set of channels — the required transfer
    rate of a bus carrying them (paper: "the bus transfer rate is
    calculated as the sum of the channel transfer rate of all channels
    mapped to the bus"). *)
let bus_rate_mbps env edges =
  List.fold_left (fun acc e -> acc +. channel_rate_mbps env e) 0.0 edges

(** Rates of every channel in the graph, keyed by (behavior, variable,
    direction) for reporting. *)
let all_channel_rates env (g : Access_graph.t) =
  List.map (fun e -> (e, channel_rate_mbps env e)) g.Access_graph.g_data
