(** Per-statement execution-cost model.  Software estimation on processors
    follows the per-statement cycle counts of the component's attributes
    (in the spirit of the paper's reference [8], "Software estimation from
    executable specifications"); hardware estimation on ASICs charges the
    datapath operation count of each expression. *)

open Spec

type config = { while_iterations : int }

let default_config = { while_iterations = 8 }

let expr_ops e = float_of_int (Expr.size e)

let trip_count cfg lo hi =
  match (Expr.eval_const lo, Expr.eval_const hi) with
  | Some (Ast.VInt a), Some (Ast.VInt b) -> float_of_int (max 0 (b - a + 1))
  | _ -> float_of_int cfg.while_iterations

(* Cycle cost of a statement list on a processor. *)
let rec proc_cycles cfg (p : Arch.Component.proc_attrs) stmts =
  List.fold_left (fun acc s -> acc +. proc_stmt cfg p s) 0.0 stmts

and proc_stmt cfg p = function
  | Ast.Assign (_, e) -> p.Arch.Component.proc_cycles_assign +. expr_ops e
  | Ast.Assign_idx (_, i, e) ->
    p.Arch.Component.proc_cycles_assign +. expr_ops i +. expr_ops e
  | Ast.Signal_assign (_, e) ->
    p.Arch.Component.proc_cycles_io +. expr_ops e
  | Ast.If (branches, els) ->
    let branch_costs =
      List.map
        (fun (c, body) ->
          p.Arch.Component.proc_cycles_branch +. expr_ops c
          +. proc_cycles cfg p body)
        branches
    in
    let else_cost = proc_cycles cfg p els in
    (* Pessimistic: the most expensive alternative. *)
    List.fold_left max else_cost branch_costs
  | Ast.While (c, body) ->
    float_of_int cfg.while_iterations
    *. (p.Arch.Component.proc_cycles_branch +. expr_ops c
       +. proc_cycles cfg p body)
  | Ast.For (_, lo, hi, body) ->
    trip_count cfg lo hi
    *. (p.Arch.Component.proc_cycles_branch +. proc_cycles cfg p body)
  | Ast.Wait_until c -> p.Arch.Component.proc_cycles_branch +. expr_ops c
  | Ast.Call (_, args) ->
    p.Arch.Component.proc_cycles_io +. float_of_int (List.length args)
  | Ast.Emit (_, e) -> p.Arch.Component.proc_cycles_assign +. expr_ops e
  | Ast.Skip -> 1.0

(* Cycle cost on an ASIC: one [cycles_per_op] per expression node, one
   cycle of control per statement. *)
let rec asic_cycles cfg (a : Arch.Component.asic_attrs) stmts =
  List.fold_left (fun acc s -> acc +. asic_stmt cfg a s) 0.0 stmts

and asic_stmt cfg a =
  let per_op = a.Arch.Component.asic_cycles_per_op in
  function
  | Ast.Assign (_, e) -> 1.0 +. (per_op *. expr_ops e)
  | Ast.Assign_idx (_, i, e) -> 1.0 +. (per_op *. (expr_ops i +. expr_ops e))
  | Ast.Signal_assign (_, e) -> 1.0 +. (per_op *. expr_ops e)
  | Ast.If (branches, els) ->
    let branch_costs =
      List.map
        (fun (c, body) ->
          1.0 +. (per_op *. expr_ops c) +. asic_cycles cfg a body)
        branches
    in
    List.fold_left max (asic_cycles cfg a els) branch_costs
  | Ast.While (c, body) ->
    float_of_int cfg.while_iterations
    *. (1.0 +. (per_op *. expr_ops c) +. asic_cycles cfg a body)
  | Ast.For (_, lo, hi, body) ->
    trip_count cfg lo hi *. (1.0 +. asic_cycles cfg a body)
  | Ast.Wait_until c -> 1.0 +. (per_op *. expr_ops c)
  | Ast.Call (_, args) -> 2.0 +. float_of_int (List.length args)
  | Ast.Emit (_, e) -> 1.0 +. (per_op *. expr_ops e)
  | Ast.Skip -> 1.0

(** Cycle cost of a statement list on any executing component.
    @raise Invalid_argument for memory components, which execute nothing. *)
let stmt_cycles ?(config = default_config) (c : Arch.Component.t) stmts =
  match c.Arch.Component.c_kind with
  | Arch.Component.Processor p -> proc_cycles config p stmts
  | Arch.Component.Asic a -> asic_cycles config a stmts
  | Arch.Component.Memory _ ->
    invalid_arg "Cost_model.stmt_cycles: memory components execute no code"
