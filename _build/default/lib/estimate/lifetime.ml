(** Behavior lifetime estimation: how long a behavior executes on the
    component its partition maps to.  The channel transfer rate divides
    bits by this lifetime (paper, Section 5 and its reference [13]). *)

open Spec

(* Execution cycles of a behavior tree on a component: leaves cost their
   statements, sequential compositions cost the sum of their arms (each
   arm once — the static profile has no TOC loop counts), parallel
   compositions cost the slowest child. *)
let rec behavior_cycles ?config comp (b : Ast.behavior) =
  match b.Ast.b_body with
  | Ast.Leaf stmts -> Cost_model.stmt_cycles ?config comp stmts
  | Ast.Seq arms ->
    List.fold_left
      (fun acc a -> acc +. behavior_cycles ?config comp a.Ast.a_behavior)
      0.0 arms
  | Ast.Par children ->
    List.fold_left
      (fun acc c -> max acc (behavior_cycles ?config comp c))
      0.0 children

(** Lifetime in seconds of the named behavior on the given component.  A
    floor of one cycle avoids zero lifetimes for empty behaviors. *)
let behavior_seconds ?config (p : Ast.program) comp name =
  match Program.lookup_behavior p name with
  | None -> invalid_arg (Printf.sprintf "Lifetime: unknown behavior %s" name)
  | Some b ->
    let cycles = max 1.0 (behavior_cycles ?config comp b) in
    let mhz = Arch.Component.clock_mhz comp in
    if mhz <= 0.0 then
      invalid_arg
        (Printf.sprintf "Lifetime: component %s has no clock"
           comp.Arch.Component.c_name)
    else cycles /. (mhz *. 1e6)

(** Lifetime of a partitioned behavior: looked up through the partition
    and the allocation. *)
let partitioned_behavior_seconds ?config p alloc part name =
  match Partitioning.Partition.part_of_behavior part name with
  | None -> invalid_arg (Printf.sprintf "Lifetime: behavior %s unassigned" name)
  | Some i -> behavior_seconds ?config p (Arch.Allocation.component alloc i) name
