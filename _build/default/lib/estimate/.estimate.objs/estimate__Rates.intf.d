lib/estimate/rates.mli: Agraph Arch Cost_model Partitioning Spec
