lib/estimate/cost_model.ml: Arch Ast Expr List Spec
