lib/estimate/lifetime.ml: Arch Ast Cost_model List Partitioning Printf Program Spec
