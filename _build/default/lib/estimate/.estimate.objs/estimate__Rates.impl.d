lib/estimate/rates.ml: Access_graph Agraph Arch Cost_model Lifetime List Partitioning Spec
