lib/estimate/lifetime.mli: Arch Cost_model Partitioning Spec
