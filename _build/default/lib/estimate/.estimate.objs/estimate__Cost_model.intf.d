lib/estimate/cost_model.mli: Arch Spec
