(** Channel transfer rates (paper, Section 5; definition from its
    reference [13]): the rate at which data is sent over a channel during
    the lifetime of the behaviors communicating over it,

    {[ rate(ch) = bits(ch) * accesses(ch) / lifetime(behavior(ch)) ]}

    reported in Mbit/s.  A bus's required transfer rate is the sum over
    the channels mapped to it. *)

type env = {
  program : Spec.Ast.program;
  alloc : Arch.Allocation.t;
  part : Partitioning.Partition.t;
  config : Cost_model.config;
}

val make_env :
  ?config:Cost_model.config ->
  Spec.Ast.program ->
  Arch.Allocation.t ->
  Partitioning.Partition.t ->
  env

val channel_rate_mbps : env -> Agraph.Access_graph.data_edge -> float
(** Transfer rate of one data channel in Mbit/s. *)

val bus_rate_mbps : env -> Agraph.Access_graph.data_edge list -> float
(** Required rate of a bus carrying the given channels: the sum of their
    rates. *)

val all_channel_rates :
  env ->
  Agraph.Access_graph.t ->
  (Agraph.Access_graph.data_edge * float) list
(** Every channel of the graph with its rate, for reporting. *)
