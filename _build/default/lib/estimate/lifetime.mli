(** Behavior lifetime estimation: how long a behavior executes on the
    component its partition maps to.  Channel transfer rates divide bits
    by this lifetime (paper, Section 5 / its reference [13]). *)

val behavior_cycles :
  ?config:Cost_model.config -> Arch.Component.t -> Spec.Ast.behavior -> float
(** Execution cycles of a behavior tree: leaves cost their statements,
    sequential compositions sum their arms, parallel compositions take the
    slowest child. *)

val behavior_seconds :
  ?config:Cost_model.config ->
  Spec.Ast.program ->
  Arch.Component.t ->
  string ->
  float
(** Lifetime in seconds of the named behavior on the given component,
    floored at one clock cycle.
    @raise Invalid_argument on an unknown behavior or a clockless
    component. *)

val partitioned_behavior_seconds :
  ?config:Cost_model.config ->
  Spec.Ast.program ->
  Arch.Allocation.t ->
  Partitioning.Partition.t ->
  string ->
  float
(** Lifetime of a partitioned behavior on the component its partition maps
    to. *)
