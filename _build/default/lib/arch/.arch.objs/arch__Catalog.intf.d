lib/arch/catalog.mli: Component
