lib/arch/component.ml: Format
