lib/arch/component.mli: Format
