lib/arch/allocation.ml: Catalog Component Format List Printf String
