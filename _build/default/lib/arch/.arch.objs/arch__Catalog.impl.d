lib/arch/catalog.ml: Component List String
