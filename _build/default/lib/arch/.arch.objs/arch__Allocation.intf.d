lib/arch/allocation.mli: Component Format
