(** System components available to allocation: processors, ASICs and
    memory modules, with the attributes the estimators need. *)

type proc_attrs = {
  proc_clock_mhz : float;
  proc_cycles_assign : float;  (** cycles for an assignment statement *)
  proc_cycles_branch : float;  (** cycles for branch/condition evaluation *)
  proc_cycles_io : float;  (** cycles for one bus-level transfer *)
}

type asic_attrs = {
  asic_gates : int;  (** gate capacity *)
  asic_pins : int;
  asic_clock_mhz : float;
  asic_cycles_per_op : float;  (** cycles per datapath operation *)
}

type mem_attrs = {
  mem_ports : int;
  mem_width : int;  (** data width in bits *)
  mem_words : int;
}

type kind =
  | Processor of proc_attrs
  | Asic of asic_attrs
  | Memory of mem_attrs

type t = { c_name : string; c_kind : kind }

val processor :
  ?cycles_assign:float ->
  ?cycles_branch:float ->
  ?cycles_io:float ->
  name:string ->
  clock_mhz:float ->
  unit ->
  t

val asic :
  ?cycles_per_op:float ->
  name:string ->
  gates:int ->
  pins:int ->
  clock_mhz:float ->
  unit ->
  t

val memory : name:string -> ports:int -> width:int -> words:int -> t

val clock_mhz : t -> float
(** Clock of the component; memories report 0. *)

val is_processor : t -> bool
val is_asic : t -> bool
val is_memory : t -> bool

val pp : Format.formatter -> t -> unit
