(** An allocation: the ordered list of system components that the
    partitions of a design map onto.  Partition [i] executes on component
    [i].  Buses and memories are not allocated here — they are introduced
    by model refinement according to the chosen implementation model. *)

type t = { parts : Component.t list }

let make parts =
  if parts = [] then invalid_arg "Allocation.make: empty allocation";
  { parts }

(** Number of partitions [p] in the paper's bus-count formulas. *)
let count t = List.length t.parts

let component t i =
  match List.nth_opt t.parts i with
  | Some c -> c
  | None -> invalid_arg (Printf.sprintf "Allocation.component: no partition %d" i)

let components t = t.parts

let index_of t name =
  let rec go i = function
    | [] -> None
    | c :: rest ->
      if String.equal c.Component.c_name name then Some i else go (i + 1) rest
  in
  go 0 t.parts

(** The paper's running allocation: one Intel8086-class processor and one
    10k-gate ASIC. *)
let proc_asic () = make [ Catalog.i8086; Catalog.asic_10k ]

let pp ppf t =
  Format.fprintf ppf "@[<v>%a@]"
    (Format.pp_print_list Component.pp)
    t.parts
