(** An allocation: the ordered list of system components that the
    partitions of a design map onto — partition [i] executes on component
    [i].  Buses and memories are not allocated here; model refinement
    introduces them according to the chosen implementation model. *)

type t

val make : Component.t list -> t
(** @raise Invalid_argument on an empty allocation. *)

val count : t -> int
(** The number of partitions [p] in the paper's bus-count formulas. *)

val component : t -> int -> Component.t
(** @raise Invalid_argument on an out-of-range index. *)

val components : t -> Component.t list

val index_of : t -> string -> int option
(** Partition index of the component with the given name. *)

val proc_asic : unit -> t
(** The paper's running allocation: one Intel8086-class processor (index
    0) and one 10k-gate ASIC (index 1). *)

val pp : Format.formatter -> t -> unit
