(** A small catalog of components in the spirit of the paper's examples:
    the Intel 8086-class processor and ASICs of various capacities. *)

let i8086 =
  Component.processor ~name:"Intel8086" ~clock_mhz:10.0 ~cycles_assign:4.0
    ~cycles_branch:6.0 ~cycles_io:10.0 ()

let mc68000 =
  Component.processor ~name:"MC68000" ~clock_mhz:16.0 ~cycles_assign:3.0
    ~cycles_branch:5.0 ~cycles_io:8.0 ()

let sparc =
  Component.processor ~name:"SPARC" ~clock_mhz:40.0 ~cycles_assign:1.2
    ~cycles_branch:2.0 ~cycles_io:4.0 ()

(** The allocation of the paper's running example: a 10 000-gate, 75-pin
    ASIC. *)
let asic_10k =
  Component.asic ~name:"ASIC10k" ~gates:10_000 ~pins:75 ~clock_mhz:20.0
    ~cycles_per_op:1.0 ()

let asic_50k =
  Component.asic ~name:"ASIC50k" ~gates:50_000 ~pins:120 ~clock_mhz:25.0
    ~cycles_per_op:1.0 ()

let sram_1k = Component.memory ~name:"SRAM1k" ~ports:1 ~width:16 ~words:1024

let all = [ i8086; mc68000; sparc; asic_10k; asic_50k; sram_1k ]

let find name = List.find_opt (fun c -> String.equal c.Component.c_name name) all
