(** A small catalog of components in the spirit of the paper's examples:
    Intel 8086-class and faster processors, ASICs of various capacities,
    and a memory part. *)

val i8086 : Component.t
(** The paper's processor: 10 MHz Intel8086 class. *)

val mc68000 : Component.t
val sparc : Component.t

val asic_10k : Component.t
(** The paper's running allocation: a 10 000-gate, 75-pin ASIC. *)

val asic_50k : Component.t
val sram_1k : Component.t

val all : Component.t list

val find : string -> Component.t option
(** Look a part up by name. *)
