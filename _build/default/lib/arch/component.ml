type proc_attrs = {
  proc_clock_mhz : float;
  proc_cycles_assign : float;
  proc_cycles_branch : float;
  proc_cycles_io : float;
}

type asic_attrs = {
  asic_gates : int;
  asic_pins : int;
  asic_clock_mhz : float;
  asic_cycles_per_op : float;
}

type mem_attrs = { mem_ports : int; mem_width : int; mem_words : int }

type kind =
  | Processor of proc_attrs
  | Asic of asic_attrs
  | Memory of mem_attrs

type t = { c_name : string; c_kind : kind }

let processor ?(cycles_assign = 4.0) ?(cycles_branch = 6.0) ?(cycles_io = 10.0)
    ~name ~clock_mhz () =
  {
    c_name = name;
    c_kind =
      Processor
        {
          proc_clock_mhz = clock_mhz;
          proc_cycles_assign = cycles_assign;
          proc_cycles_branch = cycles_branch;
          proc_cycles_io = cycles_io;
        };
  }

let asic ?(cycles_per_op = 1.0) ~name ~gates ~pins ~clock_mhz () =
  {
    c_name = name;
    c_kind =
      Asic
        {
          asic_gates = gates;
          asic_pins = pins;
          asic_clock_mhz = clock_mhz;
          asic_cycles_per_op = cycles_per_op;
        };
  }

let memory ~name ~ports ~width ~words =
  {
    c_name = name;
    c_kind = Memory { mem_ports = ports; mem_width = width; mem_words = words };
  }

let clock_mhz c =
  match c.c_kind with
  | Processor p -> p.proc_clock_mhz
  | Asic a -> a.asic_clock_mhz
  | Memory _ -> 0.0

let is_processor c = match c.c_kind with Processor _ -> true | _ -> false
let is_asic c = match c.c_kind with Asic _ -> true | _ -> false
let is_memory c = match c.c_kind with Memory _ -> true | _ -> false

let pp ppf c =
  match c.c_kind with
  | Processor p ->
    Format.fprintf ppf "processor %s @@ %.1f MHz" c.c_name p.proc_clock_mhz
  | Asic a ->
    Format.fprintf ppf "ASIC %s (%d gates, %d pins) @@ %.1f MHz" c.c_name
      a.asic_gates a.asic_pins a.asic_clock_mhz
  | Memory m ->
    Format.fprintf ppf "memory %s (%d ports, %dx%d bits)" c.c_name m.mem_ports
      m.mem_words m.mem_width
