lib/agraph/access_graph.ml: Analysis Ast Behavior Buffer Expr Hashtbl List Printf Program Spec String
