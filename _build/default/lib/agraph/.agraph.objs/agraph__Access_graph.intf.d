lib/agraph/access_graph.mli: Ast Spec
