(** The access graph of a specification (paper, Figure 1a): nodes are
    behaviors and variables, edges are channels — control channels derived
    from the execution sequence (TOC arcs) and data channels derived from
    variable accesses. *)

open Spec

type data_dir = Dread | Dwrite

type control_edge = {
  ce_src : string;  (** source behavior *)
  ce_dst : string;  (** destination behavior *)
  ce_cond : Ast.expr option;  (** the TOC condition, if any *)
}

type data_edge = {
  de_behavior : string;  (** the accessing partition object *)
  de_variable : string;
  de_dir : data_dir;
  de_count : int;  (** static execution-count estimate of the accesses *)
  de_bits : int;  (** bit width of one transfer *)
}

type t = {
  g_objects : string list;
      (** partitionable behavior objects, in tree preorder *)
  g_variables : string list;  (** program-level variables *)
  g_control : control_edge list;
  g_data : data_edge list;
}

val of_program :
  ?while_iterations:int -> ?objects:string list -> Ast.program -> t
(** Derive the access graph.  [objects] selects the behaviors treated as
    partitionable units (default: the leaf behaviors of the program); the
    accesses of a non-leaf object are the aggregated accesses of its
    subtree.  Control edges connect sibling arms of every sequential
    composition.
    @raise Invalid_argument if an object name does not exist or objects
    are nested within each other. *)

val default_objects : Ast.program -> string list
(** The leaf behaviors of the program, in preorder. *)

val data_edges_of_var : t -> string -> data_edge list

val data_edges_of_behavior : t -> string -> data_edge list

val behaviors_accessing : t -> string -> string list
(** Deduplicated object behaviors with an edge to the given variable. *)

val channel_count : t -> int
(** Number of data-access channels (the paper reports 52 for the medical
    system). *)

val edge_bits : data_edge -> int
(** Total bits transferred over the channel: [count * bits]. *)

val to_dot : t -> string
(** Graphviz rendering, for inspection and the examples. *)
