open Spec

type data_dir = Dread | Dwrite

type control_edge = {
  ce_src : string;
  ce_dst : string;
  ce_cond : Ast.expr option;
}

type data_edge = {
  de_behavior : string;
  de_variable : string;
  de_dir : data_dir;
  de_count : int;
  de_bits : int;
}

type t = {
  g_objects : string list;
  g_variables : string list;
  g_control : control_edge list;
  g_data : data_edge list;
}

let default_objects (p : Ast.program) =
  List.rev
    (Behavior.fold
       (fun acc b -> if Behavior.is_leaf b then b.Ast.b_name :: acc else acc)
       [] p.Ast.p_top)

let subtree_names p name =
  match Program.lookup_behavior p name with
  | None -> invalid_arg (Printf.sprintf "unknown object behavior %s" name)
  | Some b -> Behavior.names b

let check_objects p objects =
  let subtrees = List.map (fun o -> (o, subtree_names p o)) objects in
  List.iter
    (fun (o, names) ->
      List.iter
        (fun (o', names') ->
          if (not (String.equal o o')) && List.mem o' names then
            invalid_arg
              (Printf.sprintf "object %s is nested inside object %s" o' o)
          else ignore names')
        subtrees)
    subtrees

let control_edges_of (p : Ast.program) =
  let edges_of acc b =
    match b.Ast.b_body with
    | Ast.Seq arms ->
      let arm_names = List.map (fun a -> a.Ast.a_behavior.Ast.b_name) arms in
      let explicit =
        List.concat_map
          (fun a ->
            List.filter_map
              (fun t ->
                match t.Ast.t_target with
                | Ast.Goto dst ->
                  Some
                    {
                      ce_src = a.Ast.a_behavior.Ast.b_name;
                      ce_dst = dst;
                      ce_cond = t.Ast.t_cond;
                    }
                | Ast.Complete -> None)
              a.Ast.a_transitions)
          arms
      in
      (* Fall-through arcs for arms with no explicit transitions. *)
      let rec fallthrough = function
        | a :: (next :: _ as rest) ->
          let arc =
            if a.Ast.a_transitions = [] then
              [
                {
                  ce_src = a.Ast.a_behavior.Ast.b_name;
                  ce_dst = next.Ast.a_behavior.Ast.b_name;
                  ce_cond = None;
                };
              ]
            else []
          in
          arc @ fallthrough rest
        | [ _ ] | [] -> []
      in
      ignore arm_names;
      acc @ explicit @ fallthrough arms
    | Ast.Leaf _ | Ast.Par _ -> acc
  in
  Behavior.fold edges_of [] p.Ast.p_top

let of_program ?while_iterations ?objects (p : Ast.program) =
  let objects =
    match objects with Some o -> o | None -> default_objects p
  in
  check_objects p objects;
  let per_behavior = Analysis.behavior_accesses ?while_iterations p in
  let var_width x =
    match Program.lookup_var p x with
    | Some v -> Ast.ty_width v.Ast.v_ty
    | None -> 0
  in
  let data =
    List.concat_map
      (fun obj ->
        let names = subtree_names p obj in
        let raw =
          List.concat_map
            (fun n ->
              match List.assoc_opt n per_behavior with
              | Some accs -> accs
              | None -> [])
            names
        in
        (* Aggregate the subtree accesses per (variable, direction). *)
        let tbl = Hashtbl.create 8 in
        let order = ref [] in
        List.iter
          (fun (a : Analysis.access) ->
            let dir =
              match a.Analysis.ac_kind with
              | Analysis.Read -> Dread
              | Analysis.Write -> Dwrite
            in
            let key = (a.Analysis.ac_var, dir) in
            if not (Hashtbl.mem tbl key) then order := key :: !order;
            let prev =
              match Hashtbl.find_opt tbl key with Some n -> n | None -> 0
            in
            Hashtbl.replace tbl key (prev + a.Analysis.ac_count))
          raw;
        List.rev_map
          (fun (v, dir) ->
            {
              de_behavior = obj;
              de_variable = v;
              de_dir = dir;
              de_count = Hashtbl.find tbl (v, dir);
              de_bits = var_width v;
            })
          !order)
      objects
  in
  {
    g_objects = objects;
    g_variables = Program.var_names p;
    g_control = control_edges_of p;
    g_data = data;
  }

let data_edges_of_var g v =
  List.filter (fun e -> String.equal e.de_variable v) g.g_data

let data_edges_of_behavior g b =
  List.filter (fun e -> String.equal e.de_behavior b) g.g_data

let behaviors_accessing g v =
  List.sort_uniq String.compare
    (List.map (fun e -> e.de_behavior) (data_edges_of_var g v))

let channel_count g = List.length g.g_data
let edge_bits e = e.de_count * e.de_bits

let to_dot g =
  let buf = Buffer.create 256 in
  Buffer.add_string buf "digraph access_graph {\n";
  List.iter
    (fun o -> Buffer.add_string buf (Printf.sprintf "  %S [shape=box];\n" o))
    g.g_objects;
  List.iter
    (fun v ->
      Buffer.add_string buf (Printf.sprintf "  %S [shape=ellipse];\n" v))
    g.g_variables;
  List.iter
    (fun e ->
      let label =
        match e.ce_cond with
        | Some c -> Printf.sprintf " [label=%S, style=dashed]" (Expr.to_string c)
        | None -> " [style=dashed]"
      in
      Buffer.add_string buf
        (Printf.sprintf "  %S -> %S%s;\n" e.ce_src e.ce_dst label))
    g.g_control;
  List.iter
    (fun e ->
      let src, dst =
        match e.de_dir with
        | Dread -> (e.de_variable, e.de_behavior)
        | Dwrite -> (e.de_behavior, e.de_variable)
      in
      Buffer.add_string buf
        (Printf.sprintf "  %S -> %S [label=\"%dx%db\"];\n" src dst e.de_count
           e.de_bits))
    g.g_data;
  Buffer.add_string buf "}\n";
  Buffer.contents buf
