(** The three experimental designs of the paper (Section 5): partitions of
    the medical system onto two components (a processor and an ASIC) with
    different local/global variable balances —

    - Design1: about as many global as local variables,
    - Design2: more local than global variables,
    - Design3: more global than local variables.

    The partitions are fixed (not searched) so the benchmark tables are
    fully deterministic; the classification counts are asserted by the
    test suite. *)

open Partitioning

type design = {
  d_name : string;
  d_description : string;
  d_partition : Partition.t;
}

let partition_of ~p1_behaviors ~p1_variables =
  let place o =
    match o with
    | Partition.Obj_behavior b -> if List.mem b p1_behaviors then 1 else 0
    | Partition.Obj_variable v -> if List.mem v p1_variables then 1 else 0
  in
  Partition.of_graph Medical.graph ~n_parts:2 place

(** Design1: 7 local / 7 global variables. *)
let design1 =
  {
    d_name = "Design1";
    d_description = "Local = Global";
    d_partition =
      partition_of
        ~p1_behaviors:
          [
            "CALIB_SENSE"; "PEAK_TRACK"; "VALIDATE"; "THRESH_CHECK"; "DISPLAY";
            "ALARM"; "LOG"; "NOTIFY";
          ]
        ~p1_variables:
          [ "peak"; "display_code"; "alarm_on"; "threshold"; "volume";
            "valid"; "log_index" ];
  }

(** Design2: 10 local / 4 global variables. *)
let design2 =
  {
    d_name = "Design2";
    d_description = "Local > Global";
    d_partition =
      partition_of
        ~p1_behaviors:[ "PEAK_TRACK"; "DISPLAY"; "ALARM"; "LOG" ]
        ~p1_variables:[ "peak"; "display_code"; "volume"; "log_index" ];
  }

(** Design3: 4 local / 10 global variables. *)
let design3 =
  {
    d_name = "Design3";
    d_description = "Local < Global";
    d_partition =
      partition_of
        ~p1_behaviors:
          [
            "SELF_TEST"; "FILTER"; "AVERAGE_CALC"; "PEAK_TRACK"; "THRESH_CHECK";
            "ALARM"; "NOTIFY"; "SHUTDOWN";
          ]
        ~p1_variables:[ "peak"; "alarm_on"; "average"; "threshold"; "valid";
                        "display_code" ];
  }

let all = [ design1; design2; design3 ]

(** The paper's allocation: one processor, one ASIC. *)
let allocation = Arch.Allocation.proc_asic ()
