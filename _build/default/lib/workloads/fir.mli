(** A third case study exercising arrays: a 4-tap FIR filter, the
    canonical datapath-dominated codesign workload.  Arrays map to memory
    address ranges during refinement, so this workload drives the indexed
    bus-protocol path (address = base + index) through every
    implementation model. *)

val taps : int

val spec : Spec.Ast.program
val graph : Agraph.Access_graph.t

val partition : Partitioning.Partition.t
(** Datapath (filter and its arrays) on the ASIC; stream production and
    collection on the processor. *)
