(** Reconstruction of the paper's experimental workload: "a real-time
    embedded medical system used to measure a patient's bladder volume"
    (Section 5), profiled as 16 behaviors, 14 variables and 52 data-access
    channels.  The original SpecCharts source is not available, so this is
    a synthetic system with exactly that access-graph profile: 16 leaf
    behaviors in a four-level hierarchy, 14 program variables, and 52
    derived (behavior, variable, direction) channels — the statistics
    Figures 9 and 10 depend on.  The functional content (sample
    acquisition, filtering, averaging, volume computation, thresholding,
    display/alarm/logging) mirrors the described application. *)

open Spec
open Spec.Ast

let e = Parser.expr_of_string_exn
let s = Parser.stmts_of_string_exn

let variables =
  [
    Builder.int_var ~width:8 ~init:0 "mode";
    Builder.int_var ~width:16 ~init:0 "sample";
    Builder.int_var ~width:16 ~init:0 "sum";
    Builder.int_var ~width:8 ~init:0 "count";
    Builder.int_var ~width:16 ~init:0 "average";
    Builder.int_var ~width:16 ~init:0 "threshold";
    Builder.int_var ~width:16 ~init:0 "volume";
    Builder.int_var ~width:16 ~init:16 "calib_gain";
    Builder.int_var ~width:16 ~init:0 "calib_offset";
    Builder.int_var ~width:16 ~init:0 "peak";
    Builder.bool_var ~init:false "valid";
    Builder.int_var ~width:16 ~init:0 "display_code";
    Builder.bool_var ~init:false "alarm_on";
    Builder.int_var ~width:8 ~init:0 "log_index";
  ]

(* The 16 leaf behaviors.  Accesses are arranged to derive exactly 52
   channels (see the comment at each leaf: R = read, W = write). *)

(* W mode sum count calib_gain calib_offset log_index *)
let init_leaf =
  Behavior.leaf "INIT"
    (s
       "mode := 1; sum := 0; count := 0; calib_gain := 20; \
        calib_offset := 5; log_index := 0;")

(* R mode; W valid *)
let self_test =
  Behavior.leaf "SELF_TEST"
    (s "if mode > 0 then valid := true; else valid := false; end if;")

(* R calib_gain calib_offset; W threshold *)
let calib_sense =
  Behavior.leaf "CALIB_SENSE" (s "threshold := calib_gain * 8 + calib_offset;")

(* R mode count; W sample *)
let acquire =
  Behavior.leaf "ACQUIRE" (s "sample := (mode * 17 + count * 13 + 23) % 101;")

(* R sample calib_gain; W sample *)
let filter =
  Behavior.leaf "FILTER" (s "sample := (sample * calib_gain) / 16;")

(* R sample sum count; W sum count *)
let accumulate =
  Behavior.leaf "ACCUMULATE" (s "sum := sum + sample; count := count + 1;")

(* R sum count; W average *)
let average_calc =
  Behavior.leaf "AVERAGE_CALC"
    (s "if count > 0 then average := sum / count; else average := 0; end if;")

(* R average calib_gain calib_offset; W volume *)
let volume_calc =
  Behavior.leaf "VOLUME_CALC"
    (s "volume := (average * calib_gain) / 8 + calib_offset;")

(* R volume peak; W peak *)
let peak_track =
  Behavior.leaf "PEAK_TRACK"
    (s "if volume > peak then peak := volume; end if;")

(* R volume sample; W valid *)
let validate =
  Behavior.leaf "VALIDATE"
    (s
       "if volume > 0 and sample >= 0 then valid := true; \
        else valid := false; end if;")

(* R valid volume threshold; W alarm_on *)
let thresh_check =
  Behavior.leaf "THRESH_CHECK"
    (s
       "if valid and volume > threshold then alarm_on := true; \
        else alarm_on := false; end if;")

(* R volume mode; W display_code *)
let display =
  Behavior.leaf "DISPLAY" (s "display_code := (volume + mode * 3) % 256;")

(* R alarm_on; W display_code *)
let alarm =
  Behavior.leaf "ALARM"
    (s "if alarm_on then display_code := 999; end if;")

(* R volume log_index; W log_index *)
let log_leaf =
  Behavior.leaf "LOG"
    (s "emit \"log_volume\" volume; log_index := log_index + 1;")

(* R valid alarm_on; W mode *)
let notify =
  Behavior.leaf "NOTIFY"
    (s
       "if valid and not alarm_on then mode := 2; else mode := 0; end if;")

(* R mode; W mode *)
let shutdown =
  Behavior.leaf "SHUTDOWN" (s "emit \"final_mode\" mode; mode := mode - mode;")

(* Hierarchy: the measurement loop iterates 8 times (TOC arc reading
   [count], a variable ACCUMULATE already reads, so no extra channel). *)
let measure_cycle =
  Behavior.seq "MEASURE_CYCLE"
    [
      Behavior.arm acquire;
      Behavior.arm filter;
      Behavior.arm accumulate
        ~transitions:
          [ Builder.goto ~cond:(e "count < 8") "ACQUIRE"; Builder.complete () ];
    ]

let compute =
  Behavior.seq "COMPUTE"
    [
      Behavior.arm average_calc;
      Behavior.arm volume_calc;
      Behavior.arm peak_track;
    ]

let analyze =
  Behavior.seq "ANALYZE" [ Behavior.arm validate; Behavior.arm thresh_check ]

let output =
  Behavior.seq "OUTPUT"
    [ Behavior.arm display; Behavior.arm alarm; Behavior.arm log_leaf ]

let top =
  Behavior.seq "MEDICAL"
    [
      Behavior.arm init_leaf;
      Behavior.arm self_test;
      Behavior.arm calib_sense;
      Behavior.arm measure_cycle;
      Behavior.arm compute;
      Behavior.arm analyze;
      Behavior.arm output;
      Behavior.arm notify;
      Behavior.arm shutdown;
    ]

let spec = Program.validate_exn (Program.make ~vars:variables "medical" top)

(** The 16 partitionable objects: the leaf behaviors. *)
let objects = Agraph.Access_graph.default_objects spec

let graph = Agraph.Access_graph.of_program spec

let leaf_names =
  [
    "INIT"; "SELF_TEST"; "CALIB_SENSE"; "ACQUIRE"; "FILTER"; "ACCUMULATE";
    "AVERAGE_CALC"; "VOLUME_CALC"; "PEAK_TRACK"; "VALIDATE"; "THRESH_CHECK";
    "DISPLAY"; "ALARM"; "LOG"; "NOTIFY"; "SHUTDOWN";
  ]

let variable_names = List.map (fun v -> v.v_name) variables
