(** The three experimental designs of the paper (Section 5): fixed
    partitions of the medical system onto a processor and an ASIC with
    different local/global variable balances — Design1: 7/7, Design2:
    10/4, Design3: 4/10 (asserted by the test suite). *)

type design = {
  d_name : string;
  d_description : string;
  d_partition : Partitioning.Partition.t;
}

val design1 : design
(** local = global *)

val design2 : design
(** local > global *)

val design3 : design
(** local < global *)

val all : design list

val allocation : Arch.Allocation.t
(** The paper's allocation: one Intel8086-class processor, one 10k-gate
    ASIC. *)
