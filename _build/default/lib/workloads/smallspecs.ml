(** Small pedagogical specifications: the running examples of the paper's
    Figures 1 and 2, used by the quickstart example and many tests. *)

open Spec

let s = Parser.stmts_of_string_exn
let e = Parser.expr_of_string_exn

(** Figure 1(a): behaviors A, B, C and variable x; after A, if [x > 1]
    control goes to B, if [x < 1] to C; B and C access x. *)
let fig1 =
  let a = Behavior.leaf "A" (s "x := 3; emit \"A\" x;") in
  let b = Behavior.leaf "B" (s "x := x + 5; emit \"B\" x;") in
  let c = Behavior.leaf "C" (s "emit \"C\" x;") in
  let top =
    Behavior.seq "TOP"
      [
        Behavior.arm a
          ~transitions:
            [ Builder.goto ~cond:(e "x > 1") "B";
              Builder.goto ~cond:(e "x < 1") "C" ];
        Behavior.arm b ~transitions:[ Builder.complete () ];
        Behavior.arm c ~transitions:[ Builder.complete () ];
      ]
  in
  Program.validate_exn
    (Program.make
       ~vars:[ Builder.int_var ~width:16 ~init:0 "x" ]
       "fig1" top)

(** The partition of Figure 1(c): A and C on component 0 (the processor),
    B and x on component 1 (the ASIC). *)
let fig1_partition =
  Partitioning.Partition.make ~n_parts:2
    [
      (Partitioning.Partition.Obj_behavior "A", 0);
      (Partitioning.Partition.Obj_behavior "B", 1);
      (Partitioning.Partition.Obj_behavior "C", 0);
      (Partitioning.Partition.Obj_variable "x", 1);
    ]

(** Figure 2: behaviors B1–B4 and variables v1–v7, partitioned between a
    processor (B1, B2, v1–v4) and an ASIC (B3, B4, v5–v7); v1, v2, v3 are
    local to the processor, v6 to the ASIC, and v4, v5, v7 are global. *)
let fig2 =
  let b1 = Behavior.leaf "B1" (s "v1 := v1 + 1; v2 := v1 * 2; v4 := v2 + v1;") in
  let b2 =
    Behavior.leaf "B2"
      (s "v5 := v2 + v3 + v4 + v7; emit \"B2\" v5;")
  in
  let b3 =
    Behavior.leaf "B3" (s "v6 := v5 * 2; v7 := v6 + v5; emit \"B3\" v7;")
  in
  let b4 =
    Behavior.leaf "B4" (s "emit \"B4\" v6 + v7 + v4;")
  in
  let top =
    Behavior.seq "TOP"
      [ Behavior.arm b1; Behavior.arm b2; Behavior.arm b3; Behavior.arm b4 ]
  in
  Program.validate_exn
    (Program.make
       ~vars:
         [
           Builder.int_var ~width:16 ~init:1 "v1";
           Builder.int_var ~width:16 ~init:0 "v2";
           Builder.int_var ~width:16 ~init:2 "v3";
           Builder.int_var ~width:16 ~init:0 "v4";
           Builder.int_var ~width:16 ~init:0 "v5";
           Builder.int_var ~width:16 ~init:0 "v6";
           Builder.int_var ~width:16 ~init:0 "v7";
         ]
       "fig2" top)

let fig2_partition =
  let p1_behaviors = [ "B3"; "B4" ] in
  let p1_variables = [ "v5"; "v6"; "v7" ] in
  Partitioning.Partition.make ~n_parts:2
    (List.map
       (fun b ->
         ( Partitioning.Partition.Obj_behavior b,
           if List.mem b p1_behaviors then 1 else 0 ))
       [ "B1"; "B2"; "B3"; "B4" ]
    @ List.map
        (fun v ->
          ( Partitioning.Partition.Obj_variable v,
            if List.mem v p1_variables then 1 else 0 ))
        [ "v1"; "v2"; "v3"; "v4"; "v5"; "v6"; "v7" ])

(** A tiny purely-sequential two-behavior program used by unit tests. *)
let ping_pong =
  let ping = Behavior.leaf "PING" (s "n := n + 1; emit \"ping\" n;") in
  let pong = Behavior.leaf "PONG" (s "n := n * 2; emit \"pong\" n;") in
  let top =
    Behavior.seq "TOP"
      [
        Behavior.arm ping;
        Behavior.arm pong
          ~transitions:
            [ Builder.goto ~cond:(e "n < 20") "PING"; Builder.complete () ];
      ]
  in
  Program.validate_exn
    (Program.make ~vars:[ Builder.int_var ~width:16 ~init:0 "n" ] "pingpong" top)

let ping_pong_partition =
  Partitioning.Partition.make ~n_parts:2
    [
      (Partitioning.Partition.Obj_behavior "PING", 0);
      (Partitioning.Partition.Obj_behavior "PONG", 1);
      (Partitioning.Partition.Obj_variable "n", 0);
    ]
