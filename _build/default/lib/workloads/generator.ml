(** Seeded random specification generator, used by the property-based
    tests and the scaling benchmarks.  Generated programs always
    terminate: sequential TOC arcs only jump forward, loops are constant
    [for] loops, and division/modulo only use non-zero constants.  When
    parallel composition is requested, each parallel branch works on a
    disjoint variable group, so the observable behaviour stays
    deterministic and co-simulation against the refined design is a sound
    equivalence check. *)

open Spec
open Spec.Ast
open Partitioning

type config = {
  gen_seed : int;
  gen_vars : int;  (** number of program variables (>= 1) *)
  gen_leaves : int;  (** number of leaf behaviors (>= 1) *)
  gen_stmts : int;  (** statements per leaf *)
  gen_par_branches : int;  (** 0 or 1 = purely sequential *)
}

let default_config =
  { gen_seed = 1; gen_vars = 6; gen_leaves = 8; gen_stmts = 5; gen_par_branches = 0 }

let var_name i = Printf.sprintf "g%d" i
let leaf_name i = Printf.sprintf "L%d" i

(* Random expression over the given variables; integer-valued. *)
let rec gen_expr rng vars depth =
  if depth <= 0 || Rng.int rng 3 = 0 then
    if vars <> [] && Rng.bool rng then Expr.ref_ (Rng.choose rng vars)
    else Expr.int (Rng.int rng 50)
  else
    let a = gen_expr rng vars (depth - 1) in
    let b = gen_expr rng vars (depth - 1) in
    let k_mul = 1 + Rng.int rng 5 in
    let k_mod = 2 + Rng.int rng 20 in
    match Rng.int rng 5 with
    | 0 -> Expr.(a + b)
    | 1 -> Expr.(a - b)
    | 2 -> Expr.(a * int k_mul)
    | 3 -> Expr.(a mod int k_mod)
    | _ -> Expr.(a + b)

let gen_cond rng vars =
  let a = gen_expr rng vars 1 in
  let k = Expr.int (Rng.int rng 40) in
  match Rng.int rng 4 with
  | 0 -> Expr.(a < k)
  | 1 -> Expr.(a > k)
  | 2 -> Expr.(a <= k)
  | _ -> Expr.(a >= k)

let rec gen_stmt rng vars idx_var depth =
  match Rng.int rng (if depth > 0 then 5 else 3) with
  | 0 | 1 ->
    let target = Rng.choose rng vars in
    Assign (target, gen_expr rng vars 2)
  | 2 ->
    (* Tags embed the index variable name, which is unique per leaf, so
       per-tag trace projection is a meaningful equivalence. *)
    Emit (Printf.sprintf "%s_t%d" idx_var (Rng.int rng 4), gen_expr rng vars 1)
  | 3 ->
    If
      ( [ (gen_cond rng vars, gen_stmts rng vars idx_var (depth - 1) 2) ],
        gen_stmts rng vars idx_var (depth - 1) 1 )
  | _ ->
    For
      ( idx_var,
        Expr.int 0,
        Expr.int (1 + Rng.int rng 3),
        gen_stmts rng vars idx_var (depth - 1) 2 )

and gen_stmts rng vars idx_var depth n =
  List.init n (fun _ -> gen_stmt rng vars idx_var depth)

let gen_leaf rng vars i ~stmts =
  let idx_var = Printf.sprintf "i%d" i in
  let body =
    gen_stmts rng vars idx_var 2 stmts
    @ [ Emit (leaf_name i, gen_expr rng vars 1) ]
  in
  Behavior.leaf ~vars:[ Builder.int_var ~width:16 ~init:0 idx_var ]
    (leaf_name i) body

(* A sequential composition of the given leaves with forward-only TOC
   arcs: each arm either falls through, jumps to a strictly later arm
   under a condition, or completes. *)
let gen_seq rng name leaves =
  let n = List.length leaves in
  let arms =
    List.mapi
      (fun i leaf ->
        let vars = Stmt.reads (match leaf.b_body with Leaf s -> s | _ -> []) in
        let program_vars = List.filter (fun v -> v.[0] = 'g') vars in
        if i + 1 >= n || Rng.int rng 3 = 0 || program_vars = [] then
          Behavior.arm leaf
        else
          let j = i + 1 + Rng.int rng (n - i - 1) in
          let target = (List.nth leaves j).b_name in
          Behavior.arm leaf
            ~transitions:
              [
                Builder.goto ~cond:(gen_cond rng program_vars) target;
                Builder.goto (List.nth leaves (i + 1)).b_name;
              ])
      leaves
  in
  Behavior.seq name arms

let split_into rng k xs =
  let groups = Array.make k [] in
  List.iteri (fun i x -> groups.(i mod k) <- x :: groups.(i mod k)) xs;
  ignore rng;
  Array.to_list (Array.map List.rev groups)

let program (cfg : config) =
  let rng = Rng.create cfg.gen_seed in
  let nvars = max 1 cfg.gen_vars in
  let nleaves = max 1 cfg.gen_leaves in
  let var_names = List.init nvars var_name in
  let decls =
    List.map
      (fun v -> Builder.int_var ~width:16 ~init:(Rng.int rng 10) v)
      var_names
  in
  let top =
    if cfg.gen_par_branches <= 1 then begin
      let leaves =
        List.init nleaves (fun i ->
            gen_leaf rng var_names i ~stmts:cfg.gen_stmts)
      in
      gen_seq rng "TOP" leaves
    end
    else begin
      (* Disjoint variable groups per parallel branch keep the program
         race-free. *)
      let k = min cfg.gen_par_branches (min nvars nleaves) in
      let var_groups = split_into rng k var_names in
      let leaf_ids = split_into rng k (List.init nleaves Fun.id) in
      let branches =
        List.mapi
          (fun b (vars, ids) ->
            let leaves =
              List.map (fun i -> gen_leaf rng vars i ~stmts:cfg.gen_stmts) ids
            in
            gen_seq rng (Printf.sprintf "BR%d" b) leaves)
          (List.combine var_groups leaf_ids)
      in
      Behavior.par "TOP" branches
    end
  in
  Program.validate_exn
    (Program.make ~vars:decls (Printf.sprintf "gen_%d" cfg.gen_seed) top)

(** A random (seeded) complete partition of a program's access graph. *)
let random_partition ~seed g ~n_parts =
  let rng = Rng.create seed in
  Partition.of_graph g ~n_parts (fun _ -> Rng.int rng n_parts)
