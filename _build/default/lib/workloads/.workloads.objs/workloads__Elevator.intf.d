lib/workloads/elevator.mli: Agraph Partitioning Spec
