lib/workloads/designs.ml: Arch List Medical Partition Partitioning
