lib/workloads/smallspecs.ml: Behavior Builder List Parser Partitioning Program Spec
