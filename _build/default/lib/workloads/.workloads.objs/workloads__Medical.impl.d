lib/workloads/medical.ml: Agraph Behavior Builder List Parser Program Spec
