lib/workloads/medical.mli: Agraph Spec
