lib/workloads/generator.mli: Agraph Partitioning Spec
