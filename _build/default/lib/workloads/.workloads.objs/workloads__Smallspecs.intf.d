lib/workloads/smallspecs.mli: Partitioning Spec
