lib/workloads/fir.ml: Agraph Behavior Builder List Parser Partitioning Program Spec
