lib/workloads/fir.mli: Agraph Partitioning Spec
