lib/workloads/elevator.ml: Agraph Behavior Builder List Parser Partitioning Program Spec
