lib/workloads/designs.mli: Arch Partitioning
