lib/workloads/generator.ml: Array Behavior Builder Expr Fun List Partition Partitioning Printf Program Rng Spec Stmt String
