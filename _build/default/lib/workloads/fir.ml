(** A third case study exercising arrays: a 4-tap FIR filter — the
    canonical datapath-dominated codesign workload.  A producer generates
    a deterministic pseudo-sensor stream, the filter shifts a delay line
    and convolves it with a coefficient array, and a collector
    accumulates statistics.  Arrays map to memory address {e ranges}
    during refinement, so this workload drives the indexed bus-protocol
    path (address = base + index) through every implementation model. *)

open Spec
open Spec.Ast

let s = Parser.stmts_of_string_exn
let e = Parser.expr_of_string_exn

let taps = 4

let variables =
  [
    Builder.var "coeff" (TArray (16, taps)) ~init:(VInt 0);
    Builder.var "delay" (TArray (16, taps)) ~init:(VInt 0);
    Builder.int_var ~width:16 ~init:0 "sample";
    Builder.int_var ~width:16 ~init:0 "output";
    Builder.int_var ~width:16 ~init:0 "acc_energy";
    Builder.int_var ~width:8 ~init:0 "n";
    Builder.int_var ~width:16 ~init:7 "seed_v";
  ]

(* W coeff (element-wise) *)
let load_coeffs =
  Behavior.leaf "LOAD_COEFFS"
    (s "coeff[0] := 3; coeff[1] := 5; coeff[2] := 5; coeff[3] := 3;")

(* R seed_v; W seed_v sample *)
let produce =
  Behavior.leaf "PRODUCE"
    (s "seed_v := (seed_v * 13 + 41) % 128; sample := seed_v - 64;")

(* R delay sample coeff; W delay output *)
let filter =
  Behavior.leaf "FILTER"
    ~vars:
      [ Builder.int_var ~width:8 "k"; Builder.int_var ~width:16 ~init:0 "sum" ]
    (s
       "delay[3] := delay[2]; delay[2] := delay[1]; delay[1] := delay[0]; \
        delay[0] := sample; \
        sum := 0; \
        for k := 0 to 3 do sum := sum + coeff[k] * delay[k]; end for; \
        output := sum / 16;")

(* R output acc_energy n; W acc_energy n *)
let collect =
  Behavior.leaf "COLLECT"
    (s
       "acc_energy := acc_energy + output * output; n := n + 1; \
        emit \"y\" output;")

(* R acc_energy n delay; W - *)
let finish =
  Behavior.leaf "FIR_DONE"
    (s "emit \"energy\" acc_energy; emit \"tail\" delay[3];")

let top =
  Behavior.seq "FIR"
    [
      Behavior.arm load_coeffs;
      Behavior.arm produce;
      Behavior.arm filter;
      Behavior.arm collect
        ~transitions:
          [ Builder.goto ~cond:(e "n < 10") "PRODUCE";
            Builder.goto "FIR_DONE" ];
      Behavior.arm finish;
    ]

let spec = Program.validate_exn (Program.make ~vars:variables "fir" top)

let graph = Agraph.Access_graph.of_program spec

(** Datapath (filter + its arrays) on the ASIC; stream production and
    collection on the processor. *)
let partition =
  let p1_behaviors = [ "LOAD_COEFFS"; "FILTER" ] in
  let p1_variables = [ "coeff"; "delay"; "output" ] in
  Partitioning.Partition.of_graph graph ~n_parts:2 (fun o ->
      match o with
      | Partitioning.Partition.Obj_behavior b ->
        if List.mem b p1_behaviors then 1 else 0
      | Partitioning.Partition.Obj_variable v ->
        if List.mem v p1_variables then 1 else 0)
