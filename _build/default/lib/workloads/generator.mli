(** Seeded random specification generator for the property-based tests and
    the scaling benchmarks.  Generated programs always terminate
    (forward-only TOC arcs, constant loop bounds, non-zero constant
    divisors); parallel branches work on disjoint variable groups so
    observable behaviour stays deterministic and co-simulation is a sound
    equivalence check. *)

type config = {
  gen_seed : int;
  gen_vars : int;  (** number of program variables (>= 1) *)
  gen_leaves : int;  (** number of leaf behaviors (>= 1) *)
  gen_stmts : int;  (** statements per leaf *)
  gen_par_branches : int;  (** 0 or 1 = purely sequential *)
}

val default_config : config

val program : config -> Spec.Ast.program
(** Deterministic in the seed; always validates. *)

val random_partition :
  seed:int -> Agraph.Access_graph.t -> n_parts:int -> Partitioning.Partition.t
(** A seeded complete partition of the graph. *)
