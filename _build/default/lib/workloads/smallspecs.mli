(** Small pedagogical specifications: the running examples of the paper's
    Figures 1 and 2, used by the quickstart example and many tests. *)

val fig1 : Spec.Ast.program
(** Figure 1a: behaviors A, B, C and variable x; after A, control branches
    on x to B or C. *)

val fig1_partition : Partitioning.Partition.t
(** Figure 1c: A and C on the processor, B and x on the ASIC. *)

val fig2 : Spec.Ast.program
(** Figure 2: behaviors B1-B4 and variables v1-v7. *)

val fig2_partition : Partitioning.Partition.t
(** Figure 2's split: v1-v3 local to the processor, v6 local to the ASIC,
    v4, v5, v7 global. *)

val ping_pong : Spec.Ast.program
(** A two-behavior TOC loop used by unit tests. *)

val ping_pong_partition : Partitioning.Partition.t
