(** Reconstruction of the paper's experimental workload: the real-time
    embedded bladder-volume measurement system of Section 5, profiled as
    16 behaviors, 14 variables and 52 data-access channels.  The original
    SpecCharts source is not public, so this is a synthetic system with
    exactly that access-graph profile; Figures 9 and 10 depend only on
    those statistics. *)

val spec : Spec.Ast.program
(** Validated; 16 leaf behaviors in a four-level hierarchy, 14 program
    variables. *)

val graph : Agraph.Access_graph.t
(** Derived with default profiling; exactly 52 data channels. *)

val objects : string list
(** The 16 partitionable leaf behaviors, preorder. *)

val leaf_names : string list
val variable_names : string list
val variables : Spec.Ast.var_decl list
