(** A second embedded case study: an elevator controller, modelled on the
    running example of the authors' book ("Specification and design of
    embedded systems", the paper's reference [5]).  Unlike the medical
    system it is control-dominated: a request scanner, a direction
    planner, a motor sequencer and a door sequencer, with a cabin-position
    loop.  Used to check that the experimental conclusions are not
    specific to the medical workload. *)

open Spec

let s = Parser.stmts_of_string_exn
let e = Parser.expr_of_string_exn

let variables =
  [
    Builder.int_var ~width:8 ~init:0 "floor";  (* current cabin floor *)
    Builder.int_var ~width:8 ~init:0 "target";  (* chosen destination *)
    Builder.int_var ~width:8 ~init:0 "requests";  (* pending request queue *)
    Builder.int_var ~width:8 ~init:0 "direction";  (* 0 idle, 1 up, 2 down *)
    Builder.int_var ~width:8 ~init:0 "motor";  (* 0 stop, 1 up, 2 down *)
    Builder.int_var ~width:8 ~init:0 "door";  (* 0 closed .. 3 open *)
    Builder.int_var ~width:8 ~init:0 "trips";  (* completed services *)
    Builder.int_var ~width:16 ~init:0 "wear";  (* accumulated motor wear *)
    Builder.bool_var ~init:false "overload";
    Builder.int_var ~width:8 ~init:0 "load";  (* cabin load estimate *)
  ]

(* R -; W requests floor direction motor door trips wear load *)
let init_ctrl =
  Behavior.leaf "E_INIT"
    (s
       "requests := 45; floor := 0; direction := 0; motor := 0; door := 0; \
        trips := 0; wear := 0; load := 3;")

(* R requests floor; W target direction.  The request queue is a packed
   counter: the next destination is derived from its low digits. *)
let scan =
  Behavior.leaf "SCAN"
    (s
       "target := requests % 6;         if target > floor then direction := 1;         elsif target < floor then direction := 2;         else direction := 0; end if;")

(* R load; W overload *)
let weigh =
  Behavior.leaf "WEIGH"
    (s "if load > 8 then overload := true; else overload := false; end if;")

(* R direction overload; W motor wear *)
let motor_start =
  Behavior.leaf "MOTOR_START"
    (s
       "if not overload then motor := direction; else motor := 0; end if;\n\
        wear := wear + motor * 3;")

(* R motor floor target; W floor *)
let travel =
  Behavior.leaf "TRAVEL"
    (s
       "while motor = 1 and floor < target do floor := floor + 1; end while;\n\
        while motor = 2 and floor > target do floor := floor - 1; end while;")

(* R -; W motor *)
let motor_stop = Behavior.leaf "MOTOR_STOP" (s "motor := 0;")

(* R requests; W requests — consume the served request *)
let clear_request =
  Behavior.leaf "CLEAR_REQUEST" (s "requests := requests / 2;")

(* R door; W door *)
let door_open =
  Behavior.leaf "DOOR_OPEN" (s "while door < 3 do door := door + 1; end while;")

(* R load; W load door *)
let exchange =
  Behavior.leaf "EXCHANGE"
    (s "load := (load * 5 + 4) % 11; door := 3;")

(* R door; W door *)
let door_close =
  Behavior.leaf "DOOR_CLOSE" (s "while door > 0 do door := door - 1; end while;")

(* R trips floor; W trips *)
let log_trip =
  Behavior.leaf "LOG_TRIP"
    (s "trips := trips + 1; emit \"served\" floor;")

(* R trips wear; W - *)
let report =
  Behavior.leaf "E_REPORT" (s "emit \"trips\" trips; emit \"wear\" wear;")

let door_cycle =
  Behavior.seq "DOOR_CYCLE"
    [
      Behavior.arm door_open;
      Behavior.arm exchange;
      Behavior.arm door_close;
    ]

let service =
  Behavior.seq "SERVICE"
    [
      Behavior.arm weigh;
      Behavior.arm motor_start;
      Behavior.arm travel;
      Behavior.arm motor_stop;
      Behavior.arm clear_request;
      Behavior.arm door_cycle;
      Behavior.arm log_trip;
    ]

let top =
  Behavior.seq "ELEVATOR"
    [
      Behavior.arm init_ctrl;
      Behavior.arm scan;
      Behavior.arm service
        (* keep serving while requests remain, then report *)
        ~transitions:
          [ Builder.goto ~cond:(e "requests > 0 and trips < 8") "SCAN";
            Builder.goto "E_REPORT" ];
      Behavior.arm report;
    ]

let spec = Program.validate_exn (Program.make ~vars:variables "elevator" top)

let graph = Agraph.Access_graph.of_program spec

(** A sensible two-component split: the mechanical sequencing (motor,
    travel, doors) on the ASIC, planning and logging on the processor. *)
let partition =
  let p1_behaviors =
    [ "MOTOR_START"; "TRAVEL"; "MOTOR_STOP"; "DOOR_OPEN"; "DOOR_CLOSE" ]
  in
  let p1_variables = [ "motor"; "door" ] in
  Partitioning.Partition.of_graph graph ~n_parts:2 (fun o ->
      match o with
      | Partitioning.Partition.Obj_behavior b ->
        if List.mem b p1_behaviors then 1 else 0
      | Partitioning.Partition.Obj_variable v ->
        if List.mem v p1_variables then 1 else 0)
