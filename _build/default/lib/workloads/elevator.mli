(** A second embedded case study: an elevator controller in the style of
    the running example of the authors' book (the paper's reference [5]).
    Control-dominated, with a service loop driven by a TOC arc on a
    composite arm — used to check that the experimental conclusions are
    not specific to the medical workload. *)

val spec : Spec.Ast.program
val graph : Agraph.Access_graph.t

val partition : Partitioning.Partition.t
(** Mechanical sequencing (motor, travel, doors) on the ASIC; planning and
    logging on the processor. *)
