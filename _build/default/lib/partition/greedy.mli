(** Constructive greedy partitioner: objects are placed one at a time, in
    decreasing order of connectivity, each on the partition that minimizes
    the traffic to already-placed neighbours while keeping loads even. *)

val run :
  ?balance_weight:float -> Agraph.Access_graph.t -> n_parts:int -> Partition.t
(** Always yields a complete partition of the graph's objects. *)
