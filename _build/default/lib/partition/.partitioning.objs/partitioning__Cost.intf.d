lib/partition/cost.mli: Agraph Partition
