lib/partition/cost.ml: Access_graph Agraph Array List Partition Printf
