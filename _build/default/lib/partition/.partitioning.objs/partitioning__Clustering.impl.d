lib/partition/clustering.ml: Access_graph Agraph Hashtbl List Map Partition
