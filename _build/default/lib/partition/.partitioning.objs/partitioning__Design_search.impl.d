lib/partition/design_search.ml: Annealing Classify Cost List Partition
