lib/partition/classify.mli: Agraph Partition
