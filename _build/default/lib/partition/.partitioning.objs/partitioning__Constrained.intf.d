lib/partition/constrained.mli: Agraph Partition
