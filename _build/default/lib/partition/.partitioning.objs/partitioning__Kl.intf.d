lib/partition/kl.mli: Agraph Cost Partition
