lib/partition/partition.mli: Agraph Format
