lib/partition/kl.ml: Cost Greedy List Partition
