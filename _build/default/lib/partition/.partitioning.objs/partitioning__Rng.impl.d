lib/partition/rng.ml: Array Int64 List
