lib/partition/rng.mli:
