lib/partition/greedy.ml: Access_graph Agraph Array Hashtbl List Partition
