lib/partition/clustering.mli: Agraph Partition
