lib/partition/annealing.mli: Agraph Cost Partition
