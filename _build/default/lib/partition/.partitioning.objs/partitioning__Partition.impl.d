lib/partition/partition.ml: Agraph Format List Map Printf String
