lib/partition/design_search.mli: Agraph Partition
