lib/partition/annealing.ml: Cost List Partition Rng
