lib/partition/classify.ml: Agraph List Partition Printf
