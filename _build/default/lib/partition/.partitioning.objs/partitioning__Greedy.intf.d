lib/partition/greedy.mli: Agraph Partition
