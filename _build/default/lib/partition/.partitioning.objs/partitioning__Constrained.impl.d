lib/partition/constrained.ml: Access_graph Agraph Annealing Array Cost List Partition
