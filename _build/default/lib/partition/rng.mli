(** Deterministic splitmix64 random generator.  Library code never uses
    [Stdlib.Random], so every randomized result is reproducible from its
    seed. *)

type t

val create : int -> t

val int : t -> int -> int
(** [int t bound] is uniform in [0, bound).
    @raise Invalid_argument when [bound <= 0]. *)

val float : t -> float
(** Uniform in [0, 1). *)

val bool : t -> bool

val shuffle : t -> 'a list -> 'a list
(** Fisher–Yates shuffle (returns a new list). *)

val choose : t -> 'a list -> 'a
(** Uniform element. @raise Invalid_argument on an empty list. *)
