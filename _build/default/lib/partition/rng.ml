(** Deterministic splitmix64 random generator.  Library code never uses
    [Stdlib.Random], so every partitioning result is reproducible from its
    seed. *)

type t = { mutable state : int64 }

let create seed = { state = Int64.of_int seed }

let next_int64 t =
  t.state <- Int64.add t.state 0x9E3779B97F4A7C15L;
  let z = t.state in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

(** [int t bound] is uniform in [0, bound). *)
let int t bound =
  if bound <= 0 then invalid_arg "Rng.int: bound <= 0";
  Int64.to_int (Int64.rem (Int64.logand (next_int64 t) Int64.max_int) (Int64.of_int bound))

(** Uniform float in [0, 1). *)
let float t =
  let bits = Int64.to_int (Int64.shift_right_logical (next_int64 t) 11) in
  float_of_int bits /. 9007199254740992.0

let bool t = Int64.logand (next_int64 t) 1L = 1L

(** Fisher–Yates shuffle (returns a new list). *)
let shuffle t xs =
  let a = Array.of_list xs in
  for i = Array.length a - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done;
  Array.to_list a

(** Pick a uniform element. @raise Invalid_argument on an empty list. *)
let choose t xs =
  match xs with
  | [] -> invalid_arg "Rng.choose: empty list"
  | _ -> List.nth xs (int t (List.length xs))
