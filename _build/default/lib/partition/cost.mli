(** Partitioning cost: cross-partition communication plus load imbalance —
    the objective the automatic partitioners minimize. *)

type weights = {
  w_comm : float;  (** weight of cross-partition traffic (bits) *)
  w_balance : float;  (** weight of the load spread between partitions *)
}

val default_weights : weights

val comm_bits : Agraph.Access_graph.t -> Partition.t -> int
(** Total bits crossing partition boundaries: for every data edge whose
    behavior and variable live in different partitions, [count * bits].
    @raise Invalid_argument if the partition does not cover the graph. *)

val part_loads : Agraph.Access_graph.t -> Partition.t -> float array
(** Activity load of each partition: every data edge contributes its bits
    to the partition of its behavior. *)

val imbalance : Agraph.Access_graph.t -> Partition.t -> float
(** Spread between the most and least loaded partition. *)

val total : ?weights:weights -> Agraph.Access_graph.t -> Partition.t -> float
