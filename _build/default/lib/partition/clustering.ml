(** Hierarchical closeness clustering: objects are merged bottom-up by
    affinity (bits exchanged), until as many clusters remain as there are
    partitions; clusters are then assigned to partitions by decreasing
    size. *)

open Agraph

module Omap = Map.Make (struct
  type t = Partition.obj

  let compare = Partition.compare_obj
end)

(* Affinity between two objects: bits on data edges connecting them. *)
let affinity_table (g : Access_graph.t) =
  let tbl = Hashtbl.create 64 in
  List.iter
    (fun (e : Access_graph.data_edge) ->
      let b = Partition.Obj_behavior e.Access_graph.de_behavior in
      let v = Partition.Obj_variable e.Access_graph.de_variable in
      let key = if Partition.compare_obj b v <= 0 then (b, v) else (v, b) in
      let prev = match Hashtbl.find_opt tbl key with Some n -> n | None -> 0 in
      Hashtbl.replace tbl key (prev + Access_graph.edge_bits e))
    g.Access_graph.g_data;
  tbl

type cluster = { members : Partition.obj list }

let cluster_affinity tbl c1 c2 =
  List.fold_left
    (fun acc o1 ->
      List.fold_left
        (fun acc o2 ->
          let key =
            if Partition.compare_obj o1 o2 <= 0 then (o1, o2) else (o2, o1)
          in
          match Hashtbl.find_opt tbl key with
          | Some bits -> acc + bits
          | None -> acc)
        acc c2.members)
    0 c1.members

let run (g : Access_graph.t) ~n_parts =
  let tbl = affinity_table g in
  let initial =
    List.map
      (fun b -> { members = [ Partition.Obj_behavior b ] })
      g.Access_graph.g_objects
    @ List.map
        (fun v -> { members = [ Partition.Obj_variable v ] })
        g.Access_graph.g_variables
  in
  (* Merge the closest pair until n_parts clusters remain (or no pair has
     positive affinity, in which case remaining clusters are just kept). *)
  let rec merge clusters =
    if List.length clusters <= n_parts then clusters
    else begin
      let best = ref None in
      let rec scan = function
        | [] | [ _ ] -> ()
        | c1 :: rest ->
          List.iter
            (fun c2 ->
              let a = cluster_affinity tbl c1 c2 in
              match !best with
              | Some (ba, _, _) when ba >= a -> ()
              | _ -> best := Some (a, c1, c2))
            rest;
          scan rest
      in
      scan clusters;
      match !best with
      | None -> clusters
      | Some (_, c1, c2) ->
        let merged = { members = c1.members @ c2.members } in
        let clusters =
          List.filter (fun c -> c != c1 && c != c2) clusters
        in
        merge (merged :: clusters)
    end
  in
  let clusters = merge initial in
  (* Largest clusters first, partitions round-robin so overflow clusters
     still land somewhere deterministic. *)
  let sorted =
    List.stable_sort
      (fun a b -> compare (List.length b.members) (List.length a.members))
      clusters
  in
  let placement =
    List.fold_left
      (fun (m, i) c ->
        let m =
          List.fold_left (fun m o -> Omap.add o (i mod n_parts) m) m c.members
        in
        (m, i + 1))
      (Omap.empty, 0) sorted
    |> fst
  in
  Partition.of_graph g ~n_parts (fun o ->
      match Omap.find_opt o placement with Some i -> i | None -> 0)
