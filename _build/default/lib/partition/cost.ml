(** Partitioning cost: cross-partition communication plus load imbalance.
    Used as the objective of the automatic partitioners. *)

open Agraph

type weights = {
  w_comm : float;  (** weight of cross-partition traffic (bits) *)
  w_balance : float;  (** weight of the load spread between partitions *)
}

let default_weights = { w_comm = 1.0; w_balance = 0.25 }

let part_of_behavior part b =
  match Partition.part_of_behavior part b with
  | Some i -> i
  | None -> invalid_arg (Printf.sprintf "Cost: behavior %s unassigned" b)

let part_of_variable part v =
  match Partition.part_of_variable part v with
  | Some i -> i
  | None -> invalid_arg (Printf.sprintf "Cost: variable %s unassigned" v)

(** Total bits crossing partition boundaries: for every data edge whose
    behavior and variable live in different partitions, [count * bits]. *)
let comm_bits (g : Access_graph.t) part =
  List.fold_left
    (fun acc (e : Access_graph.data_edge) ->
      if
        part_of_behavior part e.Access_graph.de_behavior
        <> part_of_variable part e.Access_graph.de_variable
      then acc + Access_graph.edge_bits e
      else acc)
    0 g.Access_graph.g_data

(** Activity load of each partition: every data edge contributes its bits
    to the partition of its behavior. *)
let part_loads (g : Access_graph.t) part =
  let loads = Array.make (Partition.n_parts part) 0.0 in
  List.iter
    (fun (e : Access_graph.data_edge) ->
      let i = part_of_behavior part e.Access_graph.de_behavior in
      loads.(i) <- loads.(i) +. float_of_int (Access_graph.edge_bits e))
    g.Access_graph.g_data;
  loads

let imbalance g part =
  let loads = part_loads g part in
  let mx = Array.fold_left max neg_infinity loads in
  let mn = Array.fold_left min infinity loads in
  mx -. mn

let total ?(weights = default_weights) g part =
  (weights.w_comm *. float_of_int (comm_bits g part))
  +. (weights.w_balance *. imbalance g part)
