type obj =
  | Obj_behavior of string
  | Obj_variable of string

let obj_name = function Obj_behavior n -> n | Obj_variable n -> n

let compare_obj a b =
  match (a, b) with
  | Obj_behavior x, Obj_behavior y -> String.compare x y
  | Obj_variable x, Obj_variable y -> String.compare x y
  | Obj_behavior _, Obj_variable _ -> -1
  | Obj_variable _, Obj_behavior _ -> 1

let pp_obj ppf = function
  | Obj_behavior n -> Format.fprintf ppf "behavior %s" n
  | Obj_variable n -> Format.fprintf ppf "variable %s" n

module Omap = Map.Make (struct
  type t = obj

  let compare = compare_obj
end)

type t = { assignment : int Omap.t; parts : int }

let make ~n_parts assocs =
  if n_parts < 1 then invalid_arg "Partition.make: n_parts < 1";
  let assignment =
    List.fold_left
      (fun m (o, i) ->
        if i < 0 || i >= n_parts then
          invalid_arg
            (Printf.sprintf "Partition.make: %s assigned to partition %d of %d"
               (obj_name o) i n_parts);
        if Omap.mem o m then
          invalid_arg
            (Printf.sprintf "Partition.make: duplicate object %s" (obj_name o));
        Omap.add o i m)
      Omap.empty assocs
  in
  { assignment; parts = n_parts }

let n_parts t = t.parts
let part_of t o = Omap.find_opt o t.assignment
let part_of_behavior t n = part_of t (Obj_behavior n)
let part_of_variable t n = part_of t (Obj_variable n)

let assign t o i =
  if i < 0 || i >= t.parts then
    invalid_arg (Printf.sprintf "Partition.assign: partition %d out of range" i);
  { t with assignment = Omap.add o i t.assignment }

let objects t = Omap.bindings t.assignment

let behaviors_in t i =
  Omap.fold
    (fun o j acc ->
      match o with
      | Obj_behavior n when j = i -> n :: acc
      | Obj_behavior _ | Obj_variable _ -> acc)
    t.assignment []
  |> List.rev

let variables_in t i =
  Omap.fold
    (fun o j acc ->
      match o with
      | Obj_variable n when j = i -> n :: acc
      | Obj_behavior _ | Obj_variable _ -> acc)
    t.assignment []
  |> List.rev

let graph_objects (g : Agraph.Access_graph.t) =
  List.map (fun b -> Obj_behavior b) g.Agraph.Access_graph.g_objects
  @ List.map (fun v -> Obj_variable v) g.Agraph.Access_graph.g_variables

let of_graph g ~n_parts place =
  make ~n_parts (List.map (fun o -> (o, place o)) (graph_objects g))

let complete_for g t =
  let missing =
    List.filter_map
      (fun o ->
        match part_of t o with
        | Some _ -> None
        | None -> Some (Format.asprintf "unassigned %a" pp_obj o))
      (graph_objects g)
  in
  match missing with [] -> Ok () | _ -> Error missing

let pp ppf t =
  let parts = List.init t.parts (fun i -> i) in
  Format.fprintf ppf "@[<v>";
  List.iter
    (fun i ->
      Format.fprintf ppf "P%d: behaviors {%s} variables {%s}@," i
        (String.concat ", " (behaviors_in t i))
        (String.concat ", " (variables_in t i)))
    parts;
  Format.fprintf ppf "@]"
