(** Simulated-annealing partitioner with a caller-supplied objective.  The
    default objective is {!Cost.total}; {!Design_search} reuses the engine
    with a local/global-ratio objective.  Fully deterministic given the
    seed. *)

type config = {
  seed : int;
  initial_temp : float;
  cooling : float;  (** multiplicative factor per step *)
  steps : int;
}

let default_config =
  { seed = 42; initial_temp = 1000.0; cooling = 0.995; steps = 2000 }

let random_partition rng g ~n_parts =
  Partition.of_graph g ~n_parts (fun _ -> Rng.int rng n_parts)

let run_objective ?(config = default_config) ~objective g ~n_parts =
  let rng = Rng.create config.seed in
  let current = ref (random_partition rng g ~n_parts) in
  let current_cost = ref (objective !current) in
  let best = ref !current in
  let best_cost = ref !current_cost in
  let objs = List.map fst (Partition.objects !current) in
  let n_objs = List.length objs in
  let temp = ref config.initial_temp in
  for _ = 1 to config.steps do
    let o = List.nth objs (Rng.int rng n_objs) in
    let target = Rng.int rng n_parts in
    let next = Partition.assign !current o target in
    let next_cost = objective next in
    let delta = next_cost -. !current_cost in
    let accept =
      delta <= 0.0
      || (!temp > 0.0 && Rng.float rng < exp (-.delta /. !temp))
    in
    if accept then begin
      current := next;
      current_cost := next_cost;
      if next_cost < !best_cost then begin
        best := next;
        best_cost := next_cost
      end
    end;
    temp := !temp *. config.cooling
  done;
  !best

let run ?config ?weights g ~n_parts =
  run_objective ?config ~objective:(fun p -> Cost.total ?weights g p) g ~n_parts
