(** Constraint-aware partitioning (paper, Section 1: partitioning must
    divide the specification "such that the imposed design constraints are
    met and the overall design cost is minimized").

    Each partition has a capacity limit and every object a per-partition
    cost (e.g. estimated gates on an ASIC, estimated code bytes on a
    processor — the caller supplies the model).  The annealing engine
    minimizes cross-partition communication subject to a steep penalty on
    capacity overruns, so any feasible assignment dominates every
    infeasible one. *)

open Agraph

type problem = {
  pr_limits : int array;  (** capacity limit of each partition *)
  pr_object_cost : int -> Partition.obj -> int;
      (** cost of placing an object on a partition *)
}

let loads problem part =
  let n = Partition.n_parts part in
  let loads = Array.make n 0 in
  List.iter
    (fun (o, i) -> loads.(i) <- loads.(i) + problem.pr_object_cost i o)
    (Partition.objects part);
  loads

(** Total capacity overrun (0 = feasible). *)
let overrun problem part =
  let loads = loads problem part in
  let total = ref 0 in
  Array.iteri
    (fun i load ->
      if i < Array.length problem.pr_limits then
        total := !total + max 0 (load - problem.pr_limits.(i)))
    loads;
  !total

let is_feasible problem part = overrun problem part = 0

let objective g problem part =
  (* Any overrun dwarfs any achievable communication cost. *)
  let comm = float_of_int (Cost.comm_bits g part) in
  let over = float_of_int (overrun problem part) in
  comm +. (1.0e6 *. over)

let run ?(seed = 42) ?(steps = 4000) (g : Access_graph.t) ~problem ~n_parts =
  if Array.length problem.pr_limits <> n_parts then
    invalid_arg "Constrained.run: one limit per partition required";
  let config = { Annealing.default_config with seed; steps } in
  Annealing.run_objective ~config ~objective:(objective g problem) g ~n_parts
