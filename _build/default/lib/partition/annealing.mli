(** Simulated-annealing partitioner with a caller-supplied objective;
    fully deterministic given the seed.  {!Design_search} and
    {!Constrained} reuse the engine with their own objectives. *)

type config = {
  seed : int;
  initial_temp : float;
  cooling : float;  (** multiplicative factor per step *)
  steps : int;
}

val default_config : config

val run_objective :
  ?config:config ->
  objective:(Partition.t -> float) ->
  Agraph.Access_graph.t ->
  n_parts:int ->
  Partition.t
(** Minimize an arbitrary objective over complete partitions; returns the
    best state visited. *)

val run :
  ?config:config -> ?weights:Cost.weights -> Agraph.Access_graph.t ->
  n_parts:int -> Partition.t
(** Anneal under the default {!Cost.total} objective. *)
