(** Search for partitions with a prescribed local/global variable balance —
    how the paper's three experimental designs are characterized
    (Design1: local = global, Design2: local > global, Design3:
    local < global).  Reuses the annealing engine with an objective that
    penalizes deviation from the target global-variable count, plus a small
    communication term so the result is still a sensible partition. *)

type bias = Balanced | Mostly_local | Mostly_global

let target_globals bias n_accessed =
  match bias with
  | Balanced -> n_accessed / 2
  | Mostly_local -> max 1 (n_accessed / 4)
  | Mostly_global -> n_accessed - max 1 (n_accessed / 4)

let objective g ~bias part =
  let r = Classify.report g part in
  let n_accessed = List.length r.Classify.locals + List.length r.Classify.globals in
  let target = target_globals bias n_accessed in
  let deviation = abs (List.length r.Classify.globals - target) in
  (* Also require every partition to hold at least one behavior, so all
     components are actually used. *)
  let n = Partition.n_parts part in
  let empty_parts =
    List.length
      (List.filter (fun i -> Partition.behaviors_in part i = []) (List.init n (fun i -> i)))
  in
  (1000.0 *. float_of_int deviation)
  +. (10000.0 *. float_of_int empty_parts)
  +. (0.001 *. float_of_int (Cost.comm_bits g part))

let run ?(seed = 42) ?(steps = 4000) g ~n_parts ~bias =
  let config = { Annealing.default_config with seed; steps } in
  Annealing.run_objective ~config ~objective:(objective g ~bias) g ~n_parts
