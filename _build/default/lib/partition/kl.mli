(** Kernighan–Lin / Fiduccia–Mattheyses style improvement: repeated passes
    of single-object moves with per-pass locking; each pass keeps its best
    prefix of moves, and passes repeat until no improvement. *)

val run :
  ?weights:Cost.weights -> ?max_passes:int -> Agraph.Access_graph.t ->
  Partition.t -> Partition.t
(** Improve an existing partition; the result never costs more than the
    input under {!Cost.total}. *)

val run_from_scratch :
  ?weights:Cost.weights -> Agraph.Access_graph.t -> n_parts:int -> Partition.t
(** Greedy construction followed by KL refinement. *)
