(** Kernighan–Lin / Fiduccia–Mattheyses style improvement: repeated passes
    of single-object moves.  Within a pass every object moves at most once
    (it is then locked); the pass keeps the best prefix of moves, and
    passes repeat until no improvement is found. *)

let all_objects part = List.map fst (Partition.objects part)

let best_move ?weights g part locked =
  let n = Partition.n_parts part in
  let candidates =
    List.concat_map
      (fun o ->
        if List.exists (fun l -> Partition.compare_obj l o = 0) locked then []
        else
          match Partition.part_of part o with
          | None -> []
          | Some cur ->
            List.filter_map
              (fun i -> if i <> cur then Some (o, i) else None)
              (List.init n (fun i -> i)))
      (all_objects part)
  in
  let scored =
    List.map
      (fun (o, i) ->
        let part' = Partition.assign part o i in
        (Cost.total ?weights g part', o, i, part'))
      candidates
  in
  match scored with
  | [] -> None
  | first :: rest ->
    let best =
      List.fold_left
        (fun (bc, bo, bi, bp) (c, o, i, p) ->
          if c < bc then (c, o, i, p) else (bc, bo, bi, bp))
        first rest
    in
    Some best

(* One KL pass: greedily apply best moves (even cost-increasing ones,
   locking each moved object), remember the best intermediate state, and
   return it. *)
let one_pass ?weights ?(max_moves = 64) g part =
  let rec go part locked best best_cost moves =
    if moves >= max_moves then best
    else
      match best_move ?weights g part locked with
      | None -> best
      | Some (cost, o, _, part') ->
        let best, best_cost =
          if cost < best_cost then (part', cost) else (best, best_cost)
        in
        go part' (o :: locked) best best_cost (moves + 1)
  in
  go part [] part (Cost.total ?weights g part) 0

let run ?weights ?(max_passes = 8) g part =
  let rec go part cost pass =
    if pass >= max_passes then part
    else
      let part' = one_pass ?weights g part in
      let cost' = Cost.total ?weights g part' in
      if cost' < cost then go part' cost' (pass + 1) else part
  in
  go part (Cost.total ?weights g part) 0

(** Convenience: greedy construction followed by KL refinement. *)
let run_from_scratch ?weights g ~n_parts =
  run ?weights g (Greedy.run g ~n_parts)
