type klass = Local | Global

type report = {
  locals : string list;
  globals : string list;
  unaccessed : string list;
}

let home_of part v =
  match Partition.part_of_variable part v with
  | Some i -> i
  | None -> invalid_arg (Printf.sprintf "Classify: variable %s unassigned" v)

let part_of_behavior part b =
  match Partition.part_of_behavior part b with
  | Some i -> i
  | None -> invalid_arg (Printf.sprintf "Classify: behavior %s unassigned" b)

let classify g part v =
  let home = home_of part v in
  let users = Agraph.Access_graph.behaviors_accessing g v in
  if List.for_all (fun b -> part_of_behavior part b = home) users then Local
  else Global

let report g part =
  let step (locals, globals, unaccessed) v =
    match Agraph.Access_graph.behaviors_accessing g v with
    | [] -> (locals, globals, v :: unaccessed)
    | _ ->
      begin match classify g part v with
      | Local -> (v :: locals, globals, unaccessed)
      | Global -> (locals, v :: globals, unaccessed)
      end
  in
  let locals, globals, unaccessed =
    List.fold_left step ([], [], []) g.Agraph.Access_graph.g_variables
  in
  {
    locals = List.rev locals;
    globals = List.rev globals;
    unaccessed = List.rev unaccessed;
  }

let ratio r =
  float_of_int (List.length r.locals)
  /. float_of_int (max 1 (List.length r.globals))
