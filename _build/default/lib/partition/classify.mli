(** Local/global variable classification (paper, Section 3): a variable is
    {e local} when every behavior accessing it resides in the same
    partition as the variable itself; otherwise it is {e global}. *)

type klass = Local | Global

type report = {
  locals : string list;
  globals : string list;
  unaccessed : string list;
      (** declared variables no behavior accesses; they stay local *)
}

val classify :
  Agraph.Access_graph.t -> Partition.t -> string -> klass
(** Classification of one variable.
    @raise Invalid_argument if the variable or one of its accessors is not
    assigned by the partition. *)

val report : Agraph.Access_graph.t -> Partition.t -> report
(** Classify every variable of the graph; each list is in graph order. *)

val ratio : report -> float
(** [|locals| / max 1 |globals|] — the design-characterization knob of the
    paper's three experimental designs. *)
