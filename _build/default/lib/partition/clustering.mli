(** Hierarchical closeness clustering: objects merge bottom-up by affinity
    (bits exchanged) until as many clusters remain as partitions; clusters
    are then assigned to partitions by decreasing size. *)

val run : Agraph.Access_graph.t -> n_parts:int -> Partition.t
