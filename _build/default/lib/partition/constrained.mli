(** Constraint-aware partitioning (paper, Section 1: partitioning must
    divide the specification "such that the imposed design constraints are
    met and the overall design cost is minimized").  Each partition has a
    capacity limit and every object a per-partition cost; communication is
    minimized subject to a steep penalty on capacity overruns. *)

type problem = {
  pr_limits : int array;  (** capacity limit of each partition *)
  pr_object_cost : int -> Partition.obj -> int;
      (** cost of placing an object on a partition *)
}

val loads : problem -> Partition.t -> int array
(** Capacity demand per partition under the problem's cost model. *)

val overrun : problem -> Partition.t -> int
(** Total capacity overrun; 0 means feasible. *)

val is_feasible : problem -> Partition.t -> bool

val run :
  ?seed:int ->
  ?steps:int ->
  Agraph.Access_graph.t ->
  problem:problem ->
  n_parts:int ->
  Partition.t
(** @raise Invalid_argument unless there is exactly one limit per
    partition. *)
