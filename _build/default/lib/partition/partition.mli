(** Partitions: the assignment of the specification's objects — behaviors
    and variables — to the allocated system components.  Partition indexes
    correspond to components of an {!Arch.Allocation.t}. *)

type obj =
  | Obj_behavior of string
  | Obj_variable of string

val obj_name : obj -> string
val compare_obj : obj -> obj -> int
val pp_obj : Format.formatter -> obj -> unit

type t

val make : n_parts:int -> (obj * int) list -> t
(** @raise Invalid_argument on an out-of-range partition index, a
    duplicate object, or [n_parts < 1]. *)

val n_parts : t -> int

val part_of : t -> obj -> int option

val part_of_behavior : t -> string -> int option

val part_of_variable : t -> string -> int option

val assign : t -> obj -> int -> t
(** Functional update; adds the object if absent. *)

val objects : t -> (obj * int) list
(** All assignments, sorted by object. *)

val behaviors_in : t -> int -> string list

val variables_in : t -> int -> string list

val of_graph :
  Agraph.Access_graph.t -> n_parts:int -> (obj -> int) -> t
(** Build a partition by applying a placement function to every object of
    the access graph. *)

val complete_for : Agraph.Access_graph.t -> t -> (unit, string list) result
(** Check that every object of the graph is assigned. *)

val pp : Format.formatter -> t -> unit
