(** Constructive greedy partitioner: objects are placed one at a time, in
    decreasing order of connectivity, each on the partition that minimizes
    the traffic to already-placed neighbours while keeping loads even. *)

open Agraph

let edge_endpoints (e : Access_graph.data_edge) =
  ( Partition.Obj_behavior e.Access_graph.de_behavior,
    Partition.Obj_variable e.Access_graph.de_variable )

(* Adjacency: for every object, its (neighbour, bits) pairs. *)
let adjacency (g : Access_graph.t) =
  let tbl = Hashtbl.create 64 in
  let add o n bits =
    let prev = match Hashtbl.find_opt tbl o with Some l -> l | None -> [] in
    Hashtbl.replace tbl o ((n, bits) :: prev)
  in
  List.iter
    (fun e ->
      let b, v = edge_endpoints e in
      let bits = Access_graph.edge_bits e in
      add b v bits;
      add v b bits)
    g.Access_graph.g_data;
  tbl

let connectivity tbl o =
  match Hashtbl.find_opt tbl o with
  | Some l -> List.fold_left (fun acc (_, bits) -> acc + bits) 0 l
  | None -> 0

let run ?(balance_weight = 0.25) (g : Access_graph.t) ~n_parts =
  let adj = adjacency g in
  let objs =
    List.map (fun b -> Partition.Obj_behavior b) g.Access_graph.g_objects
    @ List.map (fun v -> Partition.Obj_variable v) g.Access_graph.g_variables
  in
  let order =
    List.stable_sort
      (fun a b -> compare (connectivity adj b) (connectivity adj a))
      objs
  in
  let placed = Hashtbl.create 64 in
  let loads = Array.make n_parts 0.0 in
  let place o =
    let neighbours =
      match Hashtbl.find_opt adj o with Some l -> l | None -> []
    in
    let score i =
      (* Traffic to neighbours already placed elsewhere... *)
      let cross =
        List.fold_left
          (fun acc (n, bits) ->
            match Hashtbl.find_opt placed n with
            | Some j when j <> i -> acc + bits
            | Some _ | None -> acc)
          0 neighbours
      in
      float_of_int cross +. (balance_weight *. loads.(i))
    in
    let best = ref 0 and best_score = ref (score 0) in
    for i = 1 to n_parts - 1 do
      let s = score i in
      if s < !best_score then begin
        best := i;
        best_score := s
      end
    done;
    Hashtbl.replace placed o !best;
    loads.(!best) <- loads.(!best) +. float_of_int (connectivity adj o)
  in
  List.iter place order;
  Partition.of_graph g ~n_parts (fun o ->
      match Hashtbl.find_opt placed o with Some i -> i | None -> 0)
