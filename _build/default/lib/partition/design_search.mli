(** Search for partitions with a prescribed local/global variable balance —
    how the paper's three experimental designs are characterized (Design1:
    local = global, Design2: local > global, Design3: local < global). *)

type bias = Balanced | Mostly_local | Mostly_global

val run :
  ?seed:int ->
  ?steps:int ->
  Agraph.Access_graph.t ->
  n_parts:int ->
  bias:bias ->
  Partition.t
(** Anneal toward the requested global-variable count, with a small
    communication term and a penalty on empty partitions. *)
