(** Fresh-name generation for the refinement procedures.  All generated
    names follow the paper's conventions ([B_CTRL], [B_NEW], [B_start],
    [B_done], [tmp], …) and are uniquified against every name already
    present in the specification. *)

type t

val of_names : string list -> t

val of_program : Spec.Ast.program -> t
(** Seeds the generator with every name in the program: behaviors,
    variables (program-level and local), signals, procedures and
    parameters. *)

val fresh : t -> string -> string
(** [fresh t base] is [base] if unused, else [base_2], [base_3], …; the
    result is recorded as used. *)

val reserve : t -> string -> unit
(** Record an externally chosen name. *)

val is_used : t -> string -> bool

(** {1 Conventional derived names (paper, Section 4)} *)

val ctrl : t -> string -> string
(** [B] -> [B_CTRL] *)

val moved : t -> string -> string
(** [B] -> [B_NEW] *)

val start_signal : t -> string -> string
(** [B] -> [B_start] *)

val done_signal : t -> string -> string
(** [B] -> [B_done] *)

val tmp_var : t -> string -> string
(** [x] -> [tmp_x] *)
