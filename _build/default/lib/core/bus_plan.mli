(** The communication plan implied by an implementation model: which
    memory every variable maps to, which buses exist, and which data
    channels each bus carries.  This is the accounting behind the paper's
    Figure 9 (bus transfer rates) and the skeleton the structural refiner
    builds from. *)

open Agraph

type memory_id =
  | Gmem  (** the single global memory of Model1/Model2 *)
  | Gmem_part of int
      (** Model3: the multi-port global memory holding globals homed in
          the given partition *)
  | Lmem of int  (** local memory of a partition *)

type bus_role =
  | Shared_global
      (** Model1's only bus / Model2's global bus; masters from every
          partition *)
  | Local of int  (** local bus of one partition *)
  | Dedicated of { master : int; mem : int }
      (** Model3: the bus from partition [master] to the global memory
          homed at [mem] *)
  | Chain_request of int
      (** Model4: the request bus between partition [i] and its bus
          interface *)
  | Chain_inter  (** Model4: the bus connecting the bus interfaces *)

type bus = {
  bus_role : bus_role;
  bus_edges : Access_graph.data_edge list;
      (** channels mapped to this bus; in Model4 a cross-partition channel
          appears on every segment of the interface chain it traverses *)
}

type t = {
  bp_model : Model.t;
  bp_parts : int;
  bp_buses : bus list;
  bp_memory_of : (string * memory_id) list;
      (** memory assignment of every program variable *)
}

val build :
  ?extra_readers:(string * int) list ->
  Model.t ->
  Access_graph.t ->
  Partitioning.Partition.t ->
  t
(** Derive the plan.  [extra_readers] lists additional (variable,
    partition) readers the refined structure introduces (TOC conditions
    re-evaluated by their composite's home partition); a variable read
    from outside its home partition is forced into a globally reachable
    memory.
    @raise Invalid_argument if the partition does not cover the graph. *)

val memory_of : t -> string -> memory_id
(** @raise Not_found for a name that is not a program variable. *)

val vars_of_memory : t -> memory_id -> string list

val memories : t -> memory_id list
(** All instantiated memories (with at least one variable), deterministic
    order. *)

val bus_of_access : t -> master:int -> variable:string -> bus_role
(** The bus a behavior in partition [master] uses to reach [variable] —
    for Model4 cross-partition accesses this is the request bus
    [Chain_request master]. *)

val role_label : bus_role -> string

val equal_role : bus_role -> bus_role -> bool

val pp : Format.formatter -> t -> unit
