(** The four implementation models of the paper (Section 3).  They differ
    in three parameters: the number of memory ports, the mapping of
    variables to memories, and the communication scheme. *)

type t =
  | Model1  (** single-port global memory only; one shared bus *)
  | Model2  (** local memories + single-port global memory *)
  | Model3  (** local memories + multi-port global memories *)
  | Model4  (** local memories only + bus interfaces (message passing) *)

val all : t list
(** In paper order. *)

val name : t -> string
val description : t -> string

val of_string : string -> t option
(** Accepts ["model1"].."4"] and ["1"].."4"], case-insensitive. *)

val max_buses : t -> p:int -> int
(** Maximum number of buses after refinement for [p] partitions (paper,
    Section 3): 1, p+1, p+p², 2p+1. *)

val global_memory_ports : t -> p:int -> int
(** Maximum ports of a global memory (0 when the model has none). *)

val memory_modules : t -> p:int -> has_locals:bool -> has_globals:bool -> int
(** Number of memory modules the model instantiates. *)

val pp : Format.formatter -> t -> unit
