(** Generation of memory-module behaviors.  A memory holds the variables
    mapped to it (with their original initial values) and serves
    read/write requests on its port buses with the slave side of the
    handshake protocol (the paper's [Memory] behavior of Figure 5c).  A
    multi-port memory (Model3) runs one serving process per port, all
    sharing the same storage. *)

open Spec
open Spec.Ast

(** Response branches serving every variable of [vars] (declaration
    order: read branch then write branch per variable).  A scalar is
    served at its single address; an array is served over its address
    range, the element selected by [bus_addr - base]. *)
let branches_for ?style bs ~addr_of vars =
  List.concat_map
    (fun v ->
      let addr = addr_of v.v_name in
      match v.v_ty with
      | TBool | TInt _ ->
        [
          Protocol.slv_send_branch ?style bs ~addr ~var:v.v_name;
          Protocol.slv_receive_branch ?style bs ~addr ~var:v.v_name;
        ]
      | TArray (_, size) ->
        let a = Ref bs.Protocol.bs_addr in
        let last = addr + size - 1 in
        let in_range = Expr.(a >= int addr && a <= int last) in
        let element = Expr.(a - int addr) in
        [
          ( Expr.(ref_ bs.Protocol.bs_rd = tru && in_range),
            Builder.(bs.Protocol.bs_data <== Index (v.v_name, element))
            :: Protocol.slv_complete ?style bs );
          ( Expr.(ref_ bs.Protocol.bs_wr = tru && in_range),
            Assign_idx (v.v_name, element, Ref bs.Protocol.bs_data)
            :: Protocol.slv_complete ?style bs );
        ])
    vars

(** A memory behavior named [name] holding [vars] and serving the port
    buses [buses].  With no port the memory is pure storage (an empty
    leaf); with one port it is a single serving leaf; with several ports
    it is a parallel composition of per-port serving leaves sharing the
    storage. *)
let memory ?style ~naming ~name ~vars ~addr_of ~buses () =
  match buses with
  | [] -> Behavior.leaf ~vars name []
  | [ bs ] ->
    Behavior.leaf ~vars name
      (Protocol.slave_loop ?style bs (branches_for ?style bs ~addr_of vars))
  | _ ->
    let ports =
      List.map
        (fun bs ->
          let port_name =
            Naming.fresh naming
              (Printf.sprintf "%s_port_%s" name bs.Protocol.bs_label)
          in
          Behavior.leaf port_name
            (Protocol.slave_loop ?style bs (branches_for ?style bs ~addr_of vars)))
        buses
    in
    Behavior.par ~vars name ports
