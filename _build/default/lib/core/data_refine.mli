(** Data-related refinement (paper, Section 4.2, Figures 5 and 6): once a
    variable is mapped to a memory module its name is no longer visible to
    the behaviors, so every access is substituted with a bus-protocol
    call.  Reads load the value into a fresh [tmp] variable declared in
    the accessing behavior; writes become [MST_send] calls; reads in TOC
    conditions of sequential compositions load a [tmp] declared in the
    composite, with the protocol call appended to the end of the preceding
    arm. *)

open Spec

exception Refine_error of string
(** Raised on constructs the refinement cannot translate: a [for] index or
    an [out] procedure argument that is a partitioned variable, or a user
    procedure body accessing a partitioned variable. *)

type ctx = {
  dr_naming : Naming.t;
  dr_is_program_var : string -> bool;
      (** true for partitioned (program-level) variables *)
  dr_ty_of : string -> Ast.ty;  (** type of a partitioned variable *)
  dr_addr_of : string -> int;  (** its memory address *)
  dr_bus_of : string -> Protocol.bus_signals;
      (** the bus this process uses to reach the variable *)
  dr_arb_of : region:string -> string -> Arbiter.requester option;
      (** the requester of the given sequential region on the bus of the
          given variable, when that bus is arbitrated.  A region is a
          maximal Par-free subtree: every child of a parallel composition
          starts a new region named after that child, because its leaves
          execute concurrently with its siblings' and need their own
          request/acknowledge pair. *)
}

val load_stmts : ctx -> region:string -> var:string -> tmp:string -> Ast.stmt list
(** The acquire / [MST_receive] / release sequence loading [var] into
    [tmp]. *)

val store_stmts :
  ctx -> region:string -> var:string -> value:Ast.expr -> Ast.stmt list
(** The acquire / [MST_send] / release sequence writing [value]. *)

val refine_behavior : ctx -> root_region:string -> Ast.behavior -> Ast.behavior
(** Rewrite every access to a partitioned variable in the tree (leaf
    statements and TOC conditions), declaring the needed [tmp] variables.
    Local declarations shadowing a partitioned variable are respected.
    [root_region] names the region of the tree's root (conventionally the
    root behavior's name). *)
