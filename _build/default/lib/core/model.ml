(** The four implementation models of the paper (Section 3).  They differ
    in three parameters: the number of memory ports, the mapping of
    variables to memories, and the communication scheme. *)

type t =
  | Model1  (** single-port global memory only; one shared bus *)
  | Model2  (** local memories + single-port global memory *)
  | Model3  (** local memories + multi-port global memories *)
  | Model4  (** local memories only + bus interfaces (message passing) *)

let all = [ Model1; Model2; Model3; Model4 ]

let name = function
  | Model1 -> "Model1"
  | Model2 -> "Model2"
  | Model3 -> "Model3"
  | Model4 -> "Model4"

let description = function
  | Model1 -> "single-port global memory only"
  | Model2 -> "local memory + single-port global memory"
  | Model3 -> "local memory + multiple-port global memory"
  | Model4 -> "local memory + bus interface"

let of_string s =
  match String.lowercase_ascii s with
  | "model1" | "1" -> Some Model1
  | "model2" | "2" -> Some Model2
  | "model3" | "3" -> Some Model3
  | "model4" | "4" -> Some Model4
  | _ -> None

(** Maximum number of buses after refinement, as a function of the number
    of partitions [p] (paper, Section 3). *)
let max_buses t ~p =
  match t with
  | Model1 -> 1
  | Model2 -> p + 1
  | Model3 -> p + (p * p)
  | Model4 -> (2 * p) + 1

(** Maximum number of ports of a global memory. *)
let global_memory_ports t ~p =
  match t with Model1 | Model2 -> 1 | Model3 -> p | Model4 -> 0

(** Number of memory modules the model instantiates for [p] partitions
    when both local and global variables exist (paper, Section 5 compares
    2 modules for Model1/Model4 with 4 for Model2/Model3 at p = 2).
    Model1 uses one global memory; the paper counts 2 modules for it
    because the single-port global store is banked per component; we
    follow the structural count of our refiner: one global memory for
    Model1, [p] local + global memories for Model2/Model3, [p] local
    memories for Model4. *)
let memory_modules t ~p ~has_locals ~has_globals =
  match t with
  | Model1 -> 1
  | Model2 -> (if has_locals then p else 0) + if has_globals then 1 else 0
  | Model3 -> (if has_locals then p else 0) + if has_globals then p else 0
  | Model4 -> p

let pp ppf t = Format.fprintf ppf "%s (%s)" (name t) (description t)
