(** Bus arbiters (paper, Section 4.3, Figure 7).  When more than one
    concurrent sequential region masters a bus, each requester gets a
    [Req]/[Ack] signal pair and the bus gets a perpetual arbiter behavior
    granting access by fixed priority (requester 0 first). *)

open Spec

type requester = {
  rq_index : int;
  rq_req : string;  (** request signal *)
  rq_ack : string;  (** acknowledge signal *)
}

type t = {
  arb_bus : string;  (** bus label *)
  arb_behavior_name : string;
  arb_requesters : requester list;
}

val make : Naming.t -> bus_label:string -> n:int -> t
(** Allocate signals for [n] requesters.
    @raise Invalid_argument when [n < 2] — a single master needs no
    arbiter. *)

val signal_decls : t -> Ast.sig_decl list

val requester : t -> int -> requester
(** @raise Invalid_argument on an unknown index. *)

val acquire : requester -> Ast.stmt list
(** Master-side statements taking the bus grant. *)

val release : requester -> Ast.stmt list

val behavior : t -> Ast.behavior
(** The perpetual arbiter: wait for any request, grant the
    highest-priority requester, hold until release. *)
