open Spec
open Spec.Ast

exception Refine_error of string

let refine_error fmt = Printf.ksprintf (fun s -> raise (Refine_error s)) fmt

type ctx = {
  dr_naming : Naming.t;
  dr_is_program_var : string -> bool;
  dr_ty_of : string -> ty;
  dr_addr_of : string -> int;
  dr_bus_of : string -> Protocol.bus_signals;
  dr_arb_of : region:string -> string -> Arbiter.requester option;
      (** the requester of the given sequential region on the bus of the
          given variable, when that bus is arbitrated.  A {e region} is a
          maximal Par-free subtree: every child of a parallel composition
          starts a new region (named after that child), because its
          leaves execute concurrently with its siblings' and must hold
          their own request/acknowledge pair. *)
}

let bracket ctx ~region v stmts =
  match ctx.dr_arb_of ~region v with
  | None -> stmts
  | Some r -> Arbiter.acquire r @ stmts @ Arbiter.release r

let load_stmts ctx ~region ~var ~tmp =
  let bs = ctx.dr_bus_of var in
  bracket ctx ~region var
    [ Protocol.master_read bs ~addr:(ctx.dr_addr_of var) ~target:tmp ]

let store_stmts ctx ~region ~var ~value =
  let bs = ctx.dr_bus_of var in
  bracket ctx ~region var
    [ Protocol.master_write bs ~addr:(ctx.dr_addr_of var) ~value ]

(* Element accesses of a memory-mapped array: the bus address is the
   array's base plus the (already rewritten) index expression. *)
let elem_addr ctx var index = Expr.(int (ctx.dr_addr_of var) + index)

let load_elem_stmts ctx ~region ~var ~index ~tmp =
  let bs = ctx.dr_bus_of var in
  bracket ctx ~region var
    [
      Call
        ( Protocol.mst_receive_name bs,
          [ Arg_expr (elem_addr ctx var index); Arg_var tmp ] );
    ]

let store_elem_stmts ctx ~region ~var ~index ~value =
  let bs = ctx.dr_bus_of var in
  bracket ctx ~region var
    [
      Call
        ( Protocol.mst_send_name bs,
          [ Arg_expr (elem_addr ctx var index); Arg_expr value ] );
    ]

(* Per-behavior rewriting state: the tmp variable allocated for each
   partitioned variable read inside this behavior. *)
type tmps = {
  mutable mapping : (string * string) list;  (** variable -> tmp *)
  mutable decls : var_decl list;  (** in allocation order *)
}

let new_tmps () = { mapping = []; decls = [] }

(* Booleans travel over the integer data bus encoded as int<1> (1/0), so
   the tmp of a boolean variable is an integer; reads decode it with
   [tmp /= 0] and writes pre-encode into the same tmp. *)
let is_bool_var ctx v =
  match ctx.dr_ty_of v with TBool -> true | TInt _ | TArray _ -> false

let bus_rep_ty ctx v =
  match ctx.dr_ty_of v with
  | TBool -> TInt 1
  | TInt w -> TInt w
  | TArray (w, _) -> TInt w  (* element transfers *)

let tmp_for ctx tmps v =
  match List.assoc_opt v tmps.mapping with
  | Some t -> t
  | None ->
    let t = Naming.tmp_var ctx.dr_naming v in
    tmps.mapping <- (v, t) :: tmps.mapping;
    tmps.decls <- tmps.decls @ [ Builder.var t (bus_rep_ty ctx v) ];
    t

(* The expression standing for a (loaded) read of [v]. *)
let read_of ctx tmps v =
  let t = List.assoc v tmps.mapping in
  if is_bool_var ctx v then Expr.(ref_ t <> int 0) else Expr.ref_ t

(* Statements encoding [value] (of v's declared type) into v's tmp before
   an [MST_send]. *)
let encode_into ctx tmps v value =
  let t = tmp_for ctx tmps v in
  if is_bool_var ctx v then
    [ If ([ (value, [ Assign (t, Expr.int 1) ]) ], [ Assign (t, Expr.int 0) ]) ]
  else [ Assign (t, value) ]

(* Is [x] a partitioned variable here (not shadowed by a local)? *)
let remote ctx shadowed x =
  ctx.dr_is_program_var x && not (List.mem x shadowed)

(* Rewrite an expression: returns the load statements that must precede
   its evaluation and the expression with remote reads substituted.
   Scalar reads share one tmp per (behavior, variable); array-element
   reads get one fresh tmp per occurrence, because each occurrence may
   index a different element. *)
let rec rw_expr ctx region shadowed tmps e =
  match e with
  | Const _ -> ([], e)
  | Ref x ->
    if remote ctx shadowed x then begin
      let tmp = tmp_for ctx tmps x in
      (load_stmts ctx ~region ~var:x ~tmp, read_of ctx tmps x)
    end
    else ([], e)
  | Index (x, i) ->
    let pre_i, i' = rw_expr ctx region shadowed tmps i in
    if remote ctx shadowed x then begin
      let tmp = Naming.fresh ctx.dr_naming ("tmp_" ^ x ^ "_elt") in
      tmps.decls <- tmps.decls @ [ Builder.var tmp (bus_rep_ty ctx x) ];
      ( pre_i @ load_elem_stmts ctx ~region ~var:x ~index:i' ~tmp,
        Expr.ref_ tmp )
    end
    else (pre_i, Index (x, i'))
  | Unop (op, a) ->
    let pre, a' = rw_expr ctx region shadowed tmps a in
    (pre, Unop (op, a'))
  | Binop (op, a, b) ->
    let pre_a, a' = rw_expr ctx region shadowed tmps a in
    let pre_b, b' = rw_expr ctx region shadowed tmps b in
    (pre_a @ pre_b, Binop (op, a', b'))

let rec rw_stmts ctx region shadowed tmps stmts =
  List.concat_map (rw_stmt ctx region shadowed tmps) stmts

and rw_stmt ctx region shadowed tmps = function
  | Assign (x, e) when remote ctx shadowed x ->
    let pre, e' = rw_expr ctx region shadowed tmps e in
    let enc = encode_into ctx tmps x e' in
    let t = List.assoc x tmps.mapping in
    pre @ enc @ store_stmts ctx ~region ~var:x ~value:(Expr.ref_ t)
  | Assign (x, e) ->
    let pre, e' = rw_expr ctx region shadowed tmps e in
    pre @ [ Assign (x, e') ]
  | Assign_idx (x, i, e) when remote ctx shadowed x ->
    let pre_i, i' = rw_expr ctx region shadowed tmps i in
    let pre_e, e' = rw_expr ctx region shadowed tmps e in
    pre_i @ pre_e
    @ store_elem_stmts ctx ~region ~var:x ~index:i' ~value:e'
  | Assign_idx (x, i, e) ->
    let pre_i, i' = rw_expr ctx region shadowed tmps i in
    let pre_e, e' = rw_expr ctx region shadowed tmps e in
    pre_i @ pre_e @ [ Assign_idx (x, i', e') ]
  | Signal_assign (s, e) ->
    let pre, e' = rw_expr ctx region shadowed tmps e in
    pre @ [ Signal_assign (s, e') ]
  | If (branches, els) ->
    (* All branch conditions are loaded up front; the extra reads are
       side-effect-free protocol transactions, so only the access count
       changes, never the outcome. *)
    let pres, branches' =
      List.fold_left
        (fun (pres, acc) (c, body) ->
          let pre, c' = rw_expr ctx region shadowed tmps c in
          (pres @ pre, acc @ [ (c', rw_stmts ctx region shadowed tmps body) ]))
        ([], []) branches
    in
    pres @ [ If (branches', rw_stmts ctx region shadowed tmps els) ]
  | While (c, body) ->
    let pre, c' = rw_expr ctx region shadowed tmps c in
    (* The condition is re-evaluated on every iteration, so the loads are
       replayed at the end of the body. *)
    pre @ [ While (c', rw_stmts ctx region shadowed tmps body @ pre) ]
  | For (i, lo, hi, body) ->
    if remote ctx shadowed i then
      refine_error "for-loop index %s is a partitioned variable" i;
    let pre_lo, lo' = rw_expr ctx region shadowed tmps lo in
    let pre_hi, hi' = rw_expr ctx region shadowed tmps hi in
    pre_lo @ pre_hi @ [ For (i, lo', hi', rw_stmts ctx region shadowed tmps body) ]
  | Wait_until c ->
    let pre, c' = rw_expr ctx region shadowed tmps c in
    if pre = [] then [ Wait_until c ]
    else
      (* A wait on a condition over a memory-mapped variable becomes a
         polling loop: reload, test, repeat. *)
      pre @ [ While (Unop (Not, c'), pre) ]
  | Call (p, args) ->
    let pres, args' =
      List.fold_left
        (fun (pres, acc) arg ->
          match arg with
          | Arg_expr e ->
            let pre, e' = rw_expr ctx region shadowed tmps e in
            (pres @ pre, acc @ [ Arg_expr e' ])
          | Arg_var x ->
            if remote ctx shadowed x then
              refine_error
                "out argument %s of call to %s is a partitioned variable" x p
            else (pres, acc @ [ Arg_var x ]))
        ([], []) args
    in
    pres @ [ Call (p, args') ]
  | Emit (tag, e) ->
    let pre, e' = rw_expr ctx region shadowed tmps e in
    pre @ [ Emit (tag, e') ]
  | Skip -> [ Skip ]

(* TOC-condition refinement for one sequential composition (Figure 6):
   the composite gets a tmp per variable read in its transition
   conditions, and each arm whose transitions read partitioned variables
   gets the load statements appended to the end of its child. *)
let rec refine_seq ctx region shadowed b arms =
  let tmps = new_tmps () in
  let arms' =
    List.map
      (fun a ->
        let child = refine ctx region shadowed a.a_behavior in
        (* Rewrite every transition condition; the resulting loads run at
           the end of the arm's child (Figure 6). *)
        let loader, transitions =
          List.fold_left
            (fun (loader, ts) t ->
              match t.t_cond with
              | None -> (loader, ts @ [ t ])
              | Some c ->
                let pre, c' = rw_expr ctx region shadowed tmps c in
                (loader @ pre, ts @ [ { t with t_cond = Some c' } ]))
            ([], []) a.a_transitions
        in
        if loader = [] then { a_behavior = child; a_transitions = transitions }
        else begin
          let child' =
            match child.b_body with
            | Leaf stmts -> { child with b_body = Leaf (stmts @ loader) }
            | Seq _ | Par _ ->
              (* Wrap: run the child, then the loader leaf, then evaluate
                 the (rewritten) outer transitions. *)
              let loader_name =
                Naming.fresh ctx.dr_naming (child.b_name ^ "_toc_load")
              in
              let wrapper_name =
                Naming.fresh ctx.dr_naming (child.b_name ^ "_toc")
              in
              Behavior.seq wrapper_name
                [
                  Behavior.arm child;
                  Behavior.arm (Behavior.leaf loader_name loader);
                ]
          in
          { a_behavior = child'; a_transitions = transitions }
        end)
      arms
  in
  (* Sibling Goto targets must follow wrapper renames. *)
  let renames =
    List.map2
      (fun old_arm new_arm ->
        (old_arm.a_behavior.b_name, new_arm.a_behavior.b_name))
      arms arms'
    |> List.filter (fun (o, n) -> not (String.equal o n))
  in
  let arms' =
    List.map
      (fun a ->
        {
          a with
          a_transitions =
            List.map
              (fun t ->
                match t.t_target with
                | Goto g ->
                  begin match List.assoc_opt g renames with
                  | Some g' -> { t with t_target = Goto g' }
                  | None -> t
                  end
                | Complete -> t)
              a.a_transitions;
        })
      arms'
  in
  { b with b_body = Seq arms'; b_vars = b.b_vars @ tmps.decls }

and refine ctx region shadowed b =
  let shadowed = List.map (fun v -> v.v_name) b.b_vars @ shadowed in
  match b.b_body with
  | Leaf stmts ->
    let tmps = new_tmps () in
    let stmts' = rw_stmts ctx region shadowed tmps stmts in
    { b with b_body = Leaf stmts'; b_vars = b.b_vars @ tmps.decls }
  | Par children ->
    (* Every parallel child starts its own sequential region, named after
       the child (behavior names are unique program-wide). *)
    {
      b with
      b_body = Par (List.map (fun c -> refine ctx c.b_name shadowed c) children);
    }
  | Seq arms -> refine_seq ctx region shadowed b arms

let refine_behavior ctx ~root_region b = refine ctx root_region [] b
