(** Structural invariant checks on a refinement result, beyond
    {!Spec.Program.validate}: no leftover top-level variables, an arbiter
    exactly when a bus has several masters, the model's bus-count bound,
    registered servers, no remaining direct accesses to partitioned
    variables outside the memories, validity and well-typedness of the
    refined output.  Exercised directly by the failure-injection tests. *)

type violation = string

val run : original:Spec.Ast.program -> Refiner.t -> (unit, violation list) result
(** All violations found (empty = sound refinement result). *)
