(** Bus handshake protocols (paper, Figure 5d).  Each bus consists of four
    control lines ([start], [done], [rd], [wr]), an address bus and a data
    bus.  The master side is encapsulated in generated [MST_send_*] /
    [MST_receive_*] procedures; the slave side ([SLV_send] /
    [SLV_receive]) is inlined into the generated memory behaviors as
    response branches.

    Two protocol styles are provided, as the paper anticipates ("generally
    we can select different protocols to exchange data"): the four-phase
    return-to-zero handshake of Figure 5d, and a transition-signalled
    two-phase variant that roughly halves the delta cycles per transfer. *)

open Spec

type style =
  | Four_phase  (** the paper's Figure 5d handshake *)
  | Two_phase
      (** [start]/[done] as parity toggles, idle when equal; two signal
          edges per transfer *)

val style_name : style -> string

type bus_signals = {
  bs_label : string;  (** bus label, e.g. [bus_global] *)
  bs_start : string;
  bs_done : string;
  bs_rd : string;
  bs_wr : string;
  bs_addr : string;
  bs_data : string;
  bs_addr_width : int;
  bs_data_width : int;
}

val make_bus_signals :
  Naming.t -> label:string -> addr_width:int -> data_width:int -> bus_signals
(** Allocate the six signals of a bus. *)

val signal_decls : bus_signals -> Ast.sig_decl list

val mst_send_name : bus_signals -> string
val mst_receive_name : bus_signals -> string

val mst_send_proc : ?style:style -> bus_signals -> Ast.proc_decl
(** The master-side write protocol as a procedure
    [MST_send_<bus>(a, d)]. *)

val mst_receive_proc : ?style:style -> bus_signals -> Ast.proc_decl
(** The master-side read protocol [MST_receive_<bus>(a, out d)]. *)

val master_read : bus_signals -> addr:int -> target:string -> Ast.stmt
(** [call MST_receive_<bus>(addr, out target)]. *)

val master_write : bus_signals -> addr:int -> value:Ast.expr -> Ast.stmt

val slv_complete : ?style:style -> bus_signals -> Ast.stmt list
(** The slave-side completion handshake. *)

val slv_pending : ?style:style -> bus_signals -> Ast.expr
(** A transaction is pending on the bus. *)

val slv_idle : ?style:style -> bus_signals -> Ast.expr
(** The current transaction (served by another slave) is over. *)

val slv_send_branch :
  ?style:style -> bus_signals -> addr:int -> var:string ->
  Ast.expr * Ast.stmt list
(** Response branch serving a read of the storage location (the paper's
    [SLV_send]). *)

val slv_receive_branch :
  ?style:style -> bus_signals -> addr:int -> var:string ->
  Ast.expr * Ast.stmt list
(** Response branch serving a write (the paper's [SLV_receive]). *)

val slave_loop :
  ?style:style -> bus_signals -> (Ast.expr * Ast.stmt list) list ->
  Ast.stmt list
(** A perpetual single-slave serving loop; unmapped addresses answer with
    an [emit] marker plus a completed handshake, so masters never
    deadlock but co-simulation exposes the fault. *)

val slave_loop_selective :
  ?style:style -> bus_signals -> (Ast.expr * Ast.stmt list) list ->
  Ast.stmt list
(** A serving loop for a bus with several slaves (Model4's
    inter-interface bus): requests for other slaves' addresses are waited
    out, not answered. *)
