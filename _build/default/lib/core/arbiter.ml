(** Bus arbiters (paper, Section 4.3, Figure 7).  When more than one
    concurrent process masters a bus, each such requester gets a
    [Req]/[Ack] signal pair and the bus gets a perpetual arbiter behavior
    granting access by fixed priority — requester 0 (the paper's [B1])
    wins over requester 1, and so on. *)

open Spec
open Spec.Ast

type requester = {
  rq_index : int;
  rq_req : string;  (** request signal *)
  rq_ack : string;  (** acknowledge signal *)
}

type t = {
  arb_bus : string;  (** bus label *)
  arb_behavior_name : string;
  arb_requesters : requester list;
}

(** Allocate the request/acknowledge signals for [n] requesters of the
    given bus. *)
let make naming ~bus_label ~n =
  if n < 2 then invalid_arg "Arbiter.make: an arbiter needs >= 2 requesters";
  let requesters =
    List.init n (fun i ->
        {
          rq_index = i;
          rq_req = Naming.fresh naming (Printf.sprintf "%s_req_%d" bus_label i);
          rq_ack = Naming.fresh naming (Printf.sprintf "%s_ack_%d" bus_label i);
        })
  in
  {
    arb_bus = bus_label;
    arb_behavior_name = Naming.fresh naming ("ARB_" ^ bus_label);
    arb_requesters = requesters;
  }

let signal_decls t =
  List.concat_map
    (fun r ->
      [
        Builder.bool_signal ~init:false r.rq_req;
        Builder.bool_signal ~init:false r.rq_ack;
      ])
    t.arb_requesters

let requester t i =
  match List.find_opt (fun r -> r.rq_index = i) t.arb_requesters with
  | Some r -> r
  | None ->
    invalid_arg
      (Printf.sprintf "Arbiter.requester: bus %s has no requester %d" t.arb_bus i)

(** Master-side statements bracketing a bus transaction. *)
let acquire r =
  [
    Builder.(r.rq_req <== Expr.tru);
    Builder.wait_until Expr.(ref_ r.rq_ack = tru);
  ]

let release r =
  [
    Builder.(r.rq_req <== Expr.fls);
    Builder.wait_until Expr.(ref_ r.rq_ack = fls);
  ]

(** The perpetual arbiter behavior: wait for any request, then grant the
    highest-priority requester and hold the grant until it releases. *)
let behavior t =
  let any_request =
    match t.arb_requesters with
    | [] -> Expr.fls
    | first :: rest ->
      List.fold_left
        (fun acc r -> Expr.(acc || (ref_ r.rq_req = tru)))
        Expr.(ref_ first.rq_req = tru)
        rest
  in
  let grant r =
    [
      Builder.(r.rq_ack <== Expr.tru);
      Builder.wait_until Expr.(ref_ r.rq_req = fls);
      Builder.(r.rq_ack <== Expr.fls);
    ]
  in
  let branches =
    List.map (fun r -> (Expr.(ref_ r.rq_req = tru), grant r)) t.arb_requesters
  in
  Behavior.leaf t.arb_behavior_name
    [
      Builder.while_ Expr.tru
        [ Builder.wait_until any_request; If (branches, []) ];
    ]
