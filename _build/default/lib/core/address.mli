(** Memory address assignment (paper, Section 4.2: "each variable will be
    assigned a different address in the address space").  One program-wide
    address space keeps addressing unambiguous across every bus and
    memory; scalars take one slot, arrays a slot per element, in
    declaration order. *)

type t = {
  addr_of : (string * int) list;
  addr_width : int;  (** width of every address bus (>= 1) *)
  data_width : int;  (** width of every data bus: the widest variable *)
}

val build : Spec.Ast.program -> t

val address : t -> string -> int
(** Base address of the variable (arrays: address of element 0).
    @raise Invalid_argument for a name that is not a program variable. *)

val variables : t -> string list
(** In address order. *)
