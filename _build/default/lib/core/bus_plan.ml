open Agraph

type memory_id =
  | Gmem
  | Gmem_part of int
  | Lmem of int

type bus_role =
  | Shared_global
  | Local of int
  | Dedicated of { master : int; mem : int }
  | Chain_request of int
  | Chain_inter

type bus = {
  bus_role : bus_role;
  bus_edges : Access_graph.data_edge list;
}

type t = {
  bp_model : Model.t;
  bp_parts : int;
  bp_buses : bus list;
  bp_memory_of : (string * memory_id) list;
}

let equal_role (a : bus_role) (b : bus_role) = a = b

let role_label = function
  | Shared_global -> "global"
  | Local i -> Printf.sprintf "local%d" i
  | Dedicated { master; mem } -> Printf.sprintf "ded%d_%d" master mem
  | Chain_request i -> Printf.sprintf "req%d" i
  | Chain_inter -> "inter"

let home part v =
  match Partitioning.Partition.part_of_variable part v with
  | Some i -> i
  | None -> invalid_arg (Printf.sprintf "Bus_plan: variable %s unassigned" v)

let bpart part b =
  match Partitioning.Partition.part_of_behavior part b with
  | Some i -> i
  | None -> invalid_arg (Printf.sprintf "Bus_plan: behavior %s unassigned" b)

(* Memory assignment of every variable under a model.  Unaccessed
   variables are treated as local.  [extra_readers] declares additional
   (variable, partition) readers the refined structure introduces — TOC
   conditions are re-evaluated by the home partition of their sequential
   composition, which can differ from the arm child the access graph
   charges (see {!Refiner}); a variable with a reader outside its home
   partition must live in a globally reachable memory. *)
let memory_assignment ?(extra_readers = []) model g part =
  let report = Partitioning.Classify.report g part in
  let is_global v =
    List.mem v report.Partitioning.Classify.globals
    || List.exists
         (fun (v', reader) -> String.equal v v' && reader <> home part v)
         extra_readers
  in
  List.map
    (fun v ->
      let mem =
        match model with
        | Model.Model1 -> Gmem
        | Model.Model2 -> if is_global v then Gmem else Lmem (home part v)
        | Model.Model3 ->
          if is_global v then Gmem_part (home part v) else Lmem (home part v)
        | Model.Model4 -> Lmem (home part v)
      in
      (v, mem))
    g.Access_graph.g_variables

(* Bus skeletons per model, in the paper's figure order for the layout of
   Figure 9: partition-0 local bus, then global/dedicated buses, then the
   remaining local buses; Model4 interleaves its chain between the
   locals. *)
let bus_roles model p =
  let locals = List.init p (fun i -> Local i) in
  match model with
  | Model.Model1 -> [ Shared_global ]
  | Model.Model2 ->
    begin match locals with
    | first :: rest -> (first :: Shared_global :: rest)
    | [] -> [ Shared_global ]
    end
  | Model.Model3 ->
    let dedicated =
      List.concat_map
        (fun master ->
          let mems =
            master :: List.filter (fun g -> g <> master) (List.init p Fun.id)
          in
          List.map (fun mem -> Dedicated { master; mem }) mems)
        (List.init p Fun.id)
    in
    begin match locals with
    | first :: rest -> (first :: dedicated) @ rest
    | [] -> dedicated
    end
  | Model.Model4 ->
    let chain =
      List.init p (fun i -> Chain_request i) @ [ Chain_inter ]
    in
    begin match locals with
    | first :: rest -> (first :: chain) @ rest
    | [] -> chain
    end

(* The buses one data edge traverses. *)
let edge_buses part memory_of (e : Access_graph.data_edge) =
  let master = bpart part e.Access_graph.de_behavior in
  match List.assoc e.Access_graph.de_variable memory_of with
  | Gmem -> [ Shared_global ]
  | Gmem_part mem -> [ Dedicated { master; mem } ]
  | Lmem h ->
    if master = h then [ Local h ]
    else
      (* Model4 message passing: the transfer crosses the requester's
         request bus, the inter-interface bus and the home request bus. *)
      [ Chain_request master; Chain_inter; Chain_request h ]

let build ?extra_readers model g part =
  begin match Partitioning.Partition.complete_for g part with
  | Ok () -> ()
  | Error msgs -> invalid_arg ("Bus_plan.build: " ^ String.concat "; " msgs)
  end;
  let p = Partitioning.Partition.n_parts part in
  let memory_of = memory_assignment ?extra_readers model g part in
  let roles = bus_roles model p in
  let buses =
    List.map
      (fun role ->
        let edges =
          List.filter
            (fun e ->
              List.exists (equal_role role) (edge_buses part memory_of e))
            g.Access_graph.g_data
        in
        { bus_role = role; bus_edges = edges })
      roles
  in
  { bp_model = model; bp_parts = p; bp_buses = buses; bp_memory_of = memory_of }

let memory_of t v = List.assoc v t.bp_memory_of

let vars_of_memory t mem =
  List.filter_map
    (fun (v, m) -> if m = mem then Some v else None)
    t.bp_memory_of

let memories t =
  let rec dedup seen = function
    | [] -> []
    | (_, m) :: rest ->
      if List.mem m seen then dedup seen rest else m :: dedup (m :: seen) rest
  in
  dedup [] t.bp_memory_of

let bus_of_access t ~master ~variable =
  match memory_of t variable with
  | Gmem -> Shared_global
  | Gmem_part mem -> Dedicated { master; mem }
  | Lmem h -> if master = h then Local h else Chain_request master
  | exception Not_found ->
    invalid_arg (Printf.sprintf "Bus_plan.bus_of_access: unknown variable %s" variable)

let pp ppf t =
  Format.fprintf ppf "@[<v>%s plan, %d partitions@," (Model.name t.bp_model)
    t.bp_parts;
  List.iter
    (fun b ->
      Format.fprintf ppf "bus %-8s: %d channels@," (role_label b.bus_role)
        (List.length b.bus_edges))
    t.bp_buses;
  List.iter
    (fun (v, m) ->
      let ms =
        match m with
        | Gmem -> "Gmem"
        | Gmem_part i -> Printf.sprintf "Gmem%d" i
        | Lmem i -> Printf.sprintf "Lmem%d" i
      in
      Format.fprintf ppf "var %-10s -> %s@," v ms)
    t.bp_memory_of;
  Format.fprintf ppf "@]"
