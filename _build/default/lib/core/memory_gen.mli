(** Generation of memory-module behaviors (the paper's [Memory] behavior
    of Figure 5c).  A memory holds the variables mapped to it, with their
    original initial values (booleans bus-encoded as int<1>), and serves
    read/write requests on its port buses with the slave side of the
    handshake protocol.  A multi-port memory (Model3) runs one serving
    process per port, all sharing the storage. *)

open Spec

val branches_for :
  ?style:Protocol.style ->
  Protocol.bus_signals ->
  addr_of:(string -> int) ->
  Ast.var_decl list ->
  (Ast.expr * Ast.stmt list) list
(** Read + write response branches for every variable, in declaration
    order. *)

val memory :
  ?style:Protocol.style ->
  naming:Naming.t ->
  name:string ->
  vars:Ast.var_decl list ->
  addr_of:(string -> int) ->
  buses:Protocol.bus_signals list ->
  unit ->
  Ast.behavior
(** No port: pure storage.  One port: a single serving leaf.  Several
    ports: a parallel composition of per-port serving leaves. *)
