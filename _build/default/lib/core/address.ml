(** Memory address assignment (paper, Section 4.2: "each variable will be
    assigned a different address in the address space").  One program-wide
    address space keeps addressing unambiguous across every bus and
    memory; scalars take one slot, arrays a slot per element, in
    declaration order. *)

open Spec

type t = {
  addr_of : (string * int) list;
  addr_width : int;  (** width of every address bus *)
  data_width : int;  (** width of every data bus: the widest variable *)
}

let rec log2_ceil n = if n <= 1 then 0 else 1 + log2_ceil ((n + 1) / 2)

(* An array occupies [size] consecutive addresses starting at its base. *)
let slots_of (v : Ast.var_decl) =
  match v.Ast.v_ty with
  | Ast.TArray (_, size) -> max 1 size
  | Ast.TBool | Ast.TInt _ -> 1

let build (p : Ast.program) =
  let vars = p.Ast.p_vars in
  let addr_of, total =
    List.fold_left
      (fun (acc, next) v -> ((v.Ast.v_name, next) :: acc, next + slots_of v))
      ([], 0) vars
  in
  let addr_of = List.rev addr_of in
  let addr_width = max 1 (log2_ceil (max 1 total)) in
  let data_width =
    List.fold_left (fun acc v -> max acc (Ast.ty_width v.Ast.v_ty)) 1 vars
  in
  { addr_of; addr_width; data_width }

let address t v =
  match List.assoc_opt v t.addr_of with
  | Some a -> a
  | None -> invalid_arg (Printf.sprintf "Address.address: unknown variable %s" v)

let variables t = List.map fst t.addr_of
