lib/core/memory_gen.mli: Ast Naming Protocol Spec
