lib/core/check.mli: Refiner Spec
