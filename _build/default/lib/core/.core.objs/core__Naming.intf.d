lib/core/naming.mli: Spec
