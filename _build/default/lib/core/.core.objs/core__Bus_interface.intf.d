lib/core/bus_interface.mli: Arbiter Ast Naming Protocol Spec
