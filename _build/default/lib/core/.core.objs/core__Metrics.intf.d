lib/core/metrics.mli: Format Spec
