lib/core/naming.ml: Ast Behavior List Printf Set Spec String
