lib/core/data_refine.mli: Arbiter Ast Naming Protocol Spec
