lib/core/bus_plan.ml: Access_graph Agraph Format Fun List Model Partitioning Printf String
