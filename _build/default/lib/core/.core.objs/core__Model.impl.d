lib/core/model.ml: Format String
