lib/core/address.mli: Spec
