lib/core/arbiter.mli: Ast Naming Spec
