lib/core/memory_gen.ml: Behavior Builder Expr List Naming Printf Protocol Spec
