lib/core/control_refine.ml: Behavior Builder Expr List Naming Spec String
