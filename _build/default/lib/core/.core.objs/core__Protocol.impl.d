lib/core/protocol.ml: Builder Expr Naming Spec
