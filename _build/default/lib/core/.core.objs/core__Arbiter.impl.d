lib/core/arbiter.ml: Behavior Builder Expr List Naming Printf Spec
