lib/core/quality.mli: Arch Format Refiner
