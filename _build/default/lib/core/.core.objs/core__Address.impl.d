lib/core/address.ml: Ast List Printf Spec
