lib/core/protocol.mli: Ast Naming Spec
