lib/core/data_refine.ml: Arbiter Behavior Builder Expr List Naming Printf Protocol Spec String
