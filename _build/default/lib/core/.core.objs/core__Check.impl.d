lib/core/check.ml: Ast Behavior Bus_plan List Model Printf Program Protocol Refiner Spec Stmt String Typecheck
