lib/core/control_refine.mli: Ast Naming Spec
