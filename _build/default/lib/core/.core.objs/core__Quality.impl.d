lib/core/quality.ml: Arch Behavior Bus_plan Estimate Expr Format Fun List Model Printf Program Protocol Refiner Spec String
