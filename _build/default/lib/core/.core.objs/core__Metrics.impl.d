lib/core/metrics.ml: Ast Behavior Format List Printer Spec
