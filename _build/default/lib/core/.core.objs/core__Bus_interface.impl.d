lib/core/bus_interface.ml: Arbiter Behavior Builder Expr Fun List Memory_gen Naming Option Printf Protocol Spec
