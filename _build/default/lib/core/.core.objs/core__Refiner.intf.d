lib/core/refiner.mli: Agraph Arbiter Ast Bus_plan Model Partitioning Protocol Spec
