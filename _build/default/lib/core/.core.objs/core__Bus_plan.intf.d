lib/core/bus_plan.mli: Access_graph Agraph Format Model Partitioning
