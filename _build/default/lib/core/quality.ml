(** Quality-metric estimation for a refined design (paper, Section 1:
    "estimation of quality metrics such as performance, size, pins, power
    and cost, for different implementations, as guidance for the
    partitioning process").

    Per component: execution time of its processes, software size on
    processors, gate count on ASICs, and pin demand (the bus and handshake
    wires crossing the component boundary), checked against the
    component's capacity.  Per memory: words, width and ports.  The
    models are deliberately simple and fully documented — relative
    comparisons between implementation models are the purpose, as in the
    paper. *)

open Spec
open Spec.Ast

type component_quality = {
  cq_partition : int;
  cq_component : Arch.Component.t;
  cq_exec_seconds : float;
      (** summed estimated execution time of the partition's processes *)
  cq_software_bytes : int option;  (** processors: estimated code size *)
  cq_gates : int option;  (** ASICs: estimated gate count *)
  cq_pins : int;  (** bus + handshake wires crossing the boundary *)
  cq_gates_ok : bool option;  (** within the ASIC's gate capacity *)
  cq_pins_ok : bool option;  (** within the ASIC's pin count *)
}

type memory_quality = {
  mq_name : string;
  mq_words : int;
  mq_width : int;
  mq_ports : int;
}

type t = {
  q_components : component_quality list;
  q_memories : memory_quality list;
}

(* Crude but deterministic size models, documented here once:
   - software: 4 bytes per estimated processor cycle of straight-line
     cost (instruction bytes track dynamic cost closely enough for
     relative comparison), plus 16 bytes of call/return overhead per
     process;
   - hardware: 4 gates per expression operation, 12 gates of control per
     statement, 80 gates of FSM overhead per behavior — calibrated so the
     paper's running allocation (a 10k-gate ASIC hosting half the medical
     system) is feasible, as it was in the paper. *)

let software_bytes processes =
  List.fold_left
    (fun acc b -> acc + (4 * Behavior.stmt_count b) + 16)
    0 processes

let rec expr_ops_stmts stmts =
  List.fold_left (fun acc s -> acc + expr_ops_stmt s) 0 stmts

and expr_ops_stmt = function
  | Assign (_, e) | Signal_assign (_, e) | Wait_until e | Emit (_, e) ->
    Expr.size e
  | Assign_idx (_, i, e) -> Expr.size i + Expr.size e
  | If (branches, els) ->
    List.fold_left
      (fun acc (c, body) -> acc + Expr.size c + expr_ops_stmts body)
      (expr_ops_stmts els) branches
  | While (c, body) -> Expr.size c + expr_ops_stmts body
  | For (_, lo, hi, body) ->
    Expr.size lo + Expr.size hi + expr_ops_stmts body
  | Call (_, args) ->
    List.fold_left
      (fun acc -> function Arg_expr e -> acc + Expr.size e | Arg_var _ -> acc + 1)
      1 args
  | Skip -> 0

let gates_of processes =
  List.fold_left
    (fun acc b ->
      let ops =
        Behavior.fold
          (fun acc b ->
            match b.b_body with
            | Leaf stmts -> acc + expr_ops_stmts stmts
            | Seq _ | Par _ -> acc)
          0 b
      in
      acc + (4 * ops) + (12 * Behavior.stmt_count b)
      + (80 * Behavior.behavior_count b))
    0 processes

(* Wires crossing component [i]'s boundary:
   - every instantiated bus mastered by one of its processes: the six bus
     lines (start, done, rd, wr + address + data widths);
   - two request/acknowledge wires per arbitrated requester it owns;
   - two handshake wires per moved behavior whose controller and body
     sit on opposite sides of the boundary (one of them is [i]). *)
let pins_of (r : Refiner.t) ~partition ~moved_pairs =
  let of_buses =
    List.fold_left
      (fun acc (bi : Refiner.bus_inst) ->
        let owned =
          List.filter
            (fun (name, _) ->
              match List.assoc_opt name r.Refiner.rf_processes with
              | Some p -> p = partition
              | None ->
                (* Model4 interface masters live with their partition's
                   memory subsystem. *)
                String.equal name (Printf.sprintf "BIF_out_master_%d" partition))
            bi.Refiner.bi_requesters
        in
        if owned = [] then acc
        else
          let bs = bi.Refiner.bi_signals in
          acc + 4 + bs.Protocol.bs_addr_width + bs.Protocol.bs_data_width
          + if bi.Refiner.bi_arbiter <> None then 2 * List.length owned else 0)
      0 r.Refiner.rf_buses
  in
  let of_handshakes = 2 * moved_pairs in
  of_buses + of_handshakes

let of_refinement ~alloc (r : Refiner.t) =
  let prog = r.Refiner.rf_program in
  let n_parts = r.Refiner.rf_plan.Bus_plan.bp_parts in
  let behaviors_of partition =
    List.filter_map
      (fun (name, p) ->
        if p = partition then Program.lookup_behavior prog name else None)
      r.Refiner.rf_processes
  in
  let components =
    List.map
      (fun partition ->
        let comp = Arch.Allocation.component alloc partition in
        let processes = behaviors_of partition in
        let exec_seconds =
          List.fold_left
            (fun acc b ->
              acc
              +. Estimate.Lifetime.behavior_seconds prog comp b.b_name)
            0.0 processes
        in
        let moved_pairs =
          (* every moved behavior crosses a boundary; both sides pay the
             handshake pins *)
          List.length
            (List.filter
               (fun (name, p) ->
                 List.mem name r.Refiner.rf_moved
                 && (p = partition || r.Refiner.rf_top_home = partition))
               r.Refiner.rf_processes)
        in
        let pins = pins_of r ~partition ~moved_pairs in
        let software, gates, gates_ok, pins_ok =
          match comp.Arch.Component.c_kind with
          | Arch.Component.Processor _ ->
            (Some (software_bytes processes), None, None, None)
          | Arch.Component.Asic a ->
            let g = gates_of processes in
            ( None,
              Some g,
              Some (g <= a.Arch.Component.asic_gates),
              Some (pins <= a.Arch.Component.asic_pins) )
          | Arch.Component.Memory _ -> (None, None, None, None)
        in
        {
          cq_partition = partition;
          cq_component = comp;
          cq_exec_seconds = exec_seconds;
          cq_software_bytes = software;
          cq_gates = gates;
          cq_pins = pins;
          cq_gates_ok = gates_ok;
          cq_pins_ok = pins_ok;
        })
      (List.init n_parts Fun.id)
  in
  let data_width =
    match r.Refiner.rf_buses with
    | bi :: _ -> bi.Refiner.bi_signals.Protocol.bs_data_width
    | [] -> 0
  in
  (* Words of storage: scalars one word, arrays one per element.  The
     declarations live in the refined program's memory behaviors. *)
  let decl_table =
    List.map
      (fun (_, d) -> (d.v_name, d))
      (Behavior.all_var_decls prog.p_top)
  in
  let words_of name =
    match List.assoc_opt name decl_table with
    | Some { v_ty = TArray (_, size); _ } -> size
    | Some _ | None -> 1
  in
  let memories =
    List.filter_map
      (fun mem ->
        match Bus_plan.vars_of_memory r.Refiner.rf_plan mem with
        | [] -> None
        | vars ->
          let ports =
            match mem with
            | Bus_plan.Gmem ->
              Model.global_memory_ports r.Refiner.rf_model ~p:n_parts
            | Bus_plan.Gmem_part g ->
              List.length
                (List.filter
                   (fun (bi : Refiner.bus_inst) ->
                     match bi.Refiner.bi_role with
                     | Bus_plan.Dedicated { mem = m; _ } -> m = g
                     | _ -> false)
                   r.Refiner.rf_buses)
            | Bus_plan.Lmem _ -> 1
          in
          Some
            {
              mq_name =
                (match mem with
                | Bus_plan.Gmem -> "Gmem"
                | Bus_plan.Gmem_part g -> Printf.sprintf "Gmem%d" g
                | Bus_plan.Lmem i -> Printf.sprintf "Lmem%d" i);
              mq_words = List.fold_left (fun acc v -> acc + words_of v) 0 vars;
              mq_width = data_width;
              mq_ports = ports;
            })
      (Bus_plan.memories r.Refiner.rf_plan)
  in
  { q_components = components; q_memories = memories }

let pp ppf q =
  List.iter
    (fun c ->
      Format.fprintf ppf "P%d (%a): %.2f us" c.cq_partition Arch.Component.pp
        c.cq_component
        (c.cq_exec_seconds *. 1e6);
      (match c.cq_software_bytes with
      | Some b -> Format.fprintf ppf ", ~%d bytes of code" b
      | None -> ());
      (match c.cq_gates with
      | Some g ->
        Format.fprintf ppf ", ~%d gates%s" g
          (match c.cq_gates_ok with
          | Some true -> " (fits)"
          | Some false -> " (OVER CAPACITY)"
          | None -> "")
      | None -> ());
      Format.fprintf ppf ", %d pins%s@," c.cq_pins
        (match c.cq_pins_ok with
        | Some true -> " (fits)"
        | Some false -> " (OVER PIN BUDGET)"
        | None -> ""))
    q.q_components;
  List.iter
    (fun m ->
      Format.fprintf ppf "%s: %d x %d bits, %d port(s)@," m.mq_name m.mq_words
        m.mq_width m.mq_ports)
    q.q_memories
