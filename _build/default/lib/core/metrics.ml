(** Specification-size metrics (paper, Figure 10): lines of the printed
    specification, growth ratio of refined over original, and structural
    counts. *)

open Spec

type t = {
  m_lines : int;
  m_behaviors : int;
  m_statements : int;
  m_signals : int;
  m_procedures : int;
  m_variables : int;  (** program-level + behavior-local declarations *)
}

let of_program (p : Ast.program) =
  let local_vars =
    Behavior.fold
      (fun acc b -> acc + List.length b.Ast.b_vars)
      0 p.Ast.p_top
  in
  {
    m_lines = Printer.line_count p;
    m_behaviors = Behavior.behavior_count p.Ast.p_top;
    m_statements = Behavior.stmt_count p.Ast.p_top;
    m_signals = List.length p.Ast.p_signals;
    m_procedures = List.length p.Ast.p_procs;
    m_variables = List.length p.Ast.p_vars + local_vars;
  }

(** Refined-over-original size ratio — the paper reports 11–19x for the
    medical system and uses it to argue a 10x productivity gain. *)
let growth ~original ~refined =
  float_of_int (Printer.line_count refined)
  /. float_of_int (max 1 (Printer.line_count original))

let pp ppf m =
  Format.fprintf ppf
    "%d lines, %d behaviors, %d statements, %d signals, %d procedures, %d variables"
    m.m_lines m.m_behaviors m.m_statements m.m_signals m.m_procedures
    m.m_variables
