(** Specification-size metrics (paper, Figure 10): lines of the printed
    specification, growth ratio of refined over original, and structural
    counts. *)

type t = {
  m_lines : int;
  m_behaviors : int;
  m_statements : int;
  m_signals : int;
  m_procedures : int;
  m_variables : int;  (** program-level + behavior-local declarations *)
}

val of_program : Spec.Ast.program -> t

val growth : original:Spec.Ast.program -> refined:Spec.Ast.program -> float
(** Refined-over-original line ratio — the paper reports 11-19x for the
    medical system and argues a ~10x productivity gain from automatic
    refinement. *)

val pp : Format.formatter -> t -> unit
