(** Bus handshake protocols (paper, Figure 5d).  Each bus consists of four
    control lines ([start], [done], [rd], [wr]), an address bus and a data
    bus.  The master-side protocol is encapsulated in generated
    [MST_send_*] / [MST_receive_*] procedures; the slave side
    ([SLV_send] / [SLV_receive]) is inlined into the generated memory
    behaviors as response branches.

    Two protocol styles are provided, as the paper anticipates ("generally
    we can select different protocols to exchange data ... the content in
    the subroutines will change correspondingly"):

    - {!Four_phase} — the full return-to-zero handshake of Figure 5d:
      request, acknowledge, release, acknowledge-release (four signal
      edges per transfer);
    - {!Two_phase} — a transition-signalled (non-return-to-zero) variant:
      [start] and [done] are parity toggles, idle when equal; the master
      flips [start] to request and the slave copies [start] into [done] to
      complete (two signal edges per transfer, roughly halving the delta
      cycles each transfer costs). *)

open Spec
open Spec.Ast

type style =
  | Four_phase
  | Two_phase

let style_name = function
  | Four_phase -> "four-phase"
  | Two_phase -> "two-phase"

type bus_signals = {
  bs_label : string;  (** bus label, e.g. [b1] *)
  bs_start : string;
  bs_done : string;
  bs_rd : string;
  bs_wr : string;
  bs_addr : string;
  bs_data : string;
  bs_addr_width : int;
  bs_data_width : int;
}

(** Allocate the six signals of a bus. *)
let make_bus_signals naming ~label ~addr_width ~data_width =
  let sig_name suffix = Naming.fresh naming (label ^ "_" ^ suffix) in
  {
    bs_label = label;
    bs_start = sig_name "start";
    bs_done = sig_name "done";
    bs_rd = sig_name "rd";
    bs_wr = sig_name "wr";
    bs_addr = sig_name "addr";
    bs_data = sig_name "data";
    bs_addr_width = addr_width;
    bs_data_width = data_width;
  }

let signal_decls bs =
  [
    Builder.bool_signal ~init:false bs.bs_start;
    Builder.bool_signal ~init:false bs.bs_done;
    Builder.bool_signal ~init:false bs.bs_rd;
    Builder.bool_signal ~init:false bs.bs_wr;
    Builder.int_signal ~width:bs.bs_addr_width ~init:0 bs.bs_addr;
    Builder.int_signal ~width:bs.bs_data_width ~init:0 bs.bs_data;
  ]

let mst_send_name bs = "MST_send_" ^ bs.bs_label
let mst_receive_name bs = "MST_receive_" ^ bs.bs_label

(** The master-side write protocol.  Four-phase: drive address, data and
    [wr], raise [start], wait for the slave's [done], then release the
    bus.  Two-phase: drive the request lines, flip [start], and wait for
    [done] to catch up. *)
let mst_send_proc ?(style = Four_phase) bs =
  let body =
    match style with
    | Four_phase ->
      [
        Builder.(bs.bs_addr <== Expr.ref_ "a");
        Builder.(bs.bs_data <== Expr.ref_ "d");
        Builder.(bs.bs_wr <== Expr.tru);
        Builder.(bs.bs_start <== Expr.tru);
        Builder.wait_until Expr.(ref_ bs.bs_done = tru);
        Builder.(bs.bs_start <== Expr.fls);
        Builder.(bs.bs_wr <== Expr.fls);
        Builder.wait_until Expr.(ref_ bs.bs_done = fls);
      ]
    | Two_phase ->
      (* The target parity is latched in a local first: [start] only
         commits at the next delta, so waiting on [done = start] directly
         would satisfy itself with the stale value. *)
      [
        Builder.(bs.bs_addr <== Expr.ref_ "a");
        Builder.(bs.bs_data <== Expr.ref_ "d");
        Builder.(bs.bs_wr <== Expr.tru);
        Builder.(bs.bs_rd <== Expr.fls);
        Builder.("t" <-- Expr.not_ (Expr.ref_ bs.bs_done));
        Builder.(bs.bs_start <== Expr.ref_ "t");
        Builder.wait_until Expr.(ref_ bs.bs_done = ref_ "t");
      ]
  in
  Builder.proc (mst_send_name bs)
    ~params:
      [
        Builder.param_in "a" (TInt bs.bs_addr_width);
        Builder.param_in "d" (TInt bs.bs_data_width);
      ]
    ~vars:
      (match style with
      | Four_phase -> []
      | Two_phase -> [ Builder.bool_var "t" ])
    body

(** The master-side read protocol. *)
let mst_receive_proc ?(style = Four_phase) bs =
  let body =
    match style with
    | Four_phase ->
      [
        Builder.(bs.bs_addr <== Expr.ref_ "a");
        Builder.(bs.bs_rd <== Expr.tru);
        Builder.(bs.bs_start <== Expr.tru);
        Builder.wait_until Expr.(ref_ bs.bs_done = tru);
        Builder.("d" <-- Expr.ref_ bs.bs_data);
        Builder.(bs.bs_start <== Expr.fls);
        Builder.(bs.bs_rd <== Expr.fls);
        Builder.wait_until Expr.(ref_ bs.bs_done = fls);
      ]
    | Two_phase ->
      [
        Builder.(bs.bs_addr <== Expr.ref_ "a");
        Builder.(bs.bs_rd <== Expr.tru);
        Builder.(bs.bs_wr <== Expr.fls);
        Builder.("t" <-- Expr.not_ (Expr.ref_ bs.bs_done));
        Builder.(bs.bs_start <== Expr.ref_ "t");
        Builder.wait_until Expr.(ref_ bs.bs_done = ref_ "t");
        Builder.("d" <-- Expr.ref_ bs.bs_data);
      ]
  in
  Builder.proc (mst_receive_name bs)
    ~params:
      [
        Builder.param_in "a" (TInt bs.bs_addr_width);
        Builder.param_out "d" (TInt bs.bs_data_width);
      ]
    ~vars:
      (match style with
      | Four_phase -> []
      | Two_phase -> [ Builder.bool_var "t" ])
    body

(** Statements for the master: [call MST_receive_b(addr, out target)]. *)
let master_read bs ~addr ~target =
  Call (mst_receive_name bs, [ Arg_expr (Expr.int addr); Arg_var target ])

let master_write bs ~addr ~value =
  Call (mst_send_name bs, [ Arg_expr (Expr.int addr); Arg_expr value ])

(** The slave-side completion handshake.  Four-phase: raise [done], wait
    for the master to release [start], lower [done].  Two-phase: copy
    [start] into [done]. *)
let slv_complete ?(style = Four_phase) bs =
  match style with
  | Four_phase ->
    [
      Builder.(bs.bs_done <== Expr.tru);
      Builder.wait_until Expr.(ref_ bs.bs_start = fls);
      Builder.(bs.bs_done <== Expr.fls);
    ]
  | Two_phase ->
    (* Wait for the completion to commit, otherwise the serving loop would
       still see the request pending and re-serve it within the same
       delta. *)
    [
      Builder.(bs.bs_done <== Expr.ref_ bs.bs_start);
      Builder.wait_until Expr.(ref_ bs.bs_done = ref_ bs.bs_start);
    ]

(** The slave-side request condition: a transaction is pending. *)
let slv_pending ?(style = Four_phase) bs =
  match style with
  | Four_phase -> Expr.(ref_ bs.bs_start = tru)
  | Two_phase -> Expr.(ref_ bs.bs_start <> ref_ bs.bs_done)

(** The condition a non-addressed slave waits for before re-arming: the
    transaction (served by another slave) is over. *)
let slv_idle ?(style = Four_phase) bs =
  match style with
  | Four_phase -> Expr.(ref_ bs.bs_start = fls)
  | Two_phase -> Expr.(ref_ bs.bs_start = ref_ bs.bs_done)

(** A slave response branch serving a read of the storage location [var]
    at [addr] (the paper's [SLV_send]). *)
let slv_send_branch ?style bs ~addr ~var:store =
  ( Expr.(ref_ bs.bs_rd = tru && ref_ bs.bs_addr = int addr),
    (Builder.(bs.bs_data <== Expr.ref_ store) :: slv_complete ?style bs) )

(** A slave response branch serving a write (the paper's
    [SLV_receive]). *)
let slv_receive_branch ?style bs ~addr ~var:store =
  ( Expr.(ref_ bs.bs_wr = tru && ref_ bs.bs_addr = int addr),
    (Builder.(store <-- Expr.ref_ bs.bs_data) :: slv_complete ?style bs) )

(** One full slave serving loop over the given response branches.  The
    final branch answers unmapped addresses with an [emit] marker and a
    completed handshake, so a master is never dead-locked but the
    co-simulation trace exposes the fault. *)
let slave_loop ?style bs branches =
  let unmapped =
    Emit ("MEM_UNMAPPED_" ^ bs.bs_label, Ref bs.bs_addr)
    :: slv_complete ?style bs
  in
  [
    Builder.while_ Expr.tru
      (Builder.wait_until (slv_pending ?style bs) :: [ If (branches, unmapped) ]);
  ]

(** A slave serving loop for a bus with {e several} slaves (Model4's
    inter-interface bus): requests whose address is not served by this
    slave are left for another slave — the loop just waits out the
    transaction instead of answering. *)
let slave_loop_selective ?style bs branches =
  let leave_alone = [ Builder.wait_until (slv_idle ?style bs) ] in
  [
    Builder.while_ Expr.tru
      (Builder.wait_until (slv_pending ?style bs) :: [ If (branches, leave_alone) ]);
  ]
