(** Fresh-name generation for the refinement procedures.  All generated
    names are derived from the paper's conventions ([B_CTRL], [B_NEW],
    [B_start], [B_done], [tmp], [Memory], …) and uniquified against every
    name already present in the specification. *)

module Sset = Set.Make (String)

type t = { mutable used : Sset.t }

let of_names names = { used = Sset.of_list names }

(** All names occurring in a program: behaviors, variables (program-level
    and local), signals, procedures, parameters. *)
let of_program (p : Spec.Ast.program) =
  let open Spec in
  let names = ref [] in
  let add n = names := n :: !names in
  List.iter (fun v -> add v.Ast.v_name) p.Ast.p_vars;
  List.iter (fun s -> add s.Ast.s_name) p.Ast.p_signals;
  List.iter
    (fun pr ->
      add pr.Ast.prc_name;
      List.iter (fun prm -> add prm.Ast.prm_name) pr.Ast.prc_params;
      List.iter (fun v -> add v.Ast.v_name) pr.Ast.prc_vars)
    p.Ast.p_procs;
  ignore
    (Behavior.fold
       (fun () b ->
         add b.Ast.b_name;
         List.iter (fun v -> add v.Ast.v_name) b.Ast.b_vars)
       () p.Ast.p_top);
  of_names !names

(** [fresh t base] is [base] if unused, otherwise [base_2], [base_3], …
    The returned name is recorded as used. *)
let fresh t base =
  let name =
    if not (Sset.mem base t.used) then base
    else
      let rec go i =
        let candidate = Printf.sprintf "%s_%d" base i in
        if Sset.mem candidate t.used then go (i + 1) else candidate
      in
      go 2
  in
  t.used <- Sset.add name t.used;
  name

(** Reserve an externally chosen name (no-op if already used). *)
let reserve t name = t.used <- Sset.add name t.used

let is_used t name = Sset.mem name t.used

(* Conventional derived names (paper, Section 4). *)
let ctrl t base = fresh t (base ^ "_CTRL")
let moved t base = fresh t (base ^ "_NEW")
let start_signal t base = fresh t (base ^ "_start")
let done_signal t base = fresh t (base ^ "_done")
let tmp_var t base = fresh t ("tmp_" ^ base)
