(** Quality-metric estimation for a refined design (paper, Section 1:
    "estimation of quality metrics such as performance, size, pins, power
    and cost ... as guidance for the partitioning process").  The models
    are simple and documented in the implementation; relative comparisons
    between implementation models are the purpose, as in the paper. *)

type component_quality = {
  cq_partition : int;
  cq_component : Arch.Component.t;
  cq_exec_seconds : float;
      (** summed estimated execution time of the partition's processes *)
  cq_software_bytes : int option;  (** processors: estimated code size *)
  cq_gates : int option;  (** ASICs: estimated gate count *)
  cq_pins : int;  (** bus + handshake wires crossing the boundary *)
  cq_gates_ok : bool option;  (** within the ASIC's gate capacity *)
  cq_pins_ok : bool option;  (** within the ASIC's pin count *)
}

type memory_quality = {
  mq_name : string;
  mq_words : int;
  mq_width : int;
  mq_ports : int;
}

type t = {
  q_components : component_quality list;
  q_memories : memory_quality list;
}

val of_refinement : alloc:Arch.Allocation.t -> Refiner.t -> t

val pp : Format.formatter -> t -> unit
