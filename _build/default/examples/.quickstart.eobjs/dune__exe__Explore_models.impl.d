examples/explore_models.ml: Agraph Core List Partitioning Printf Sim Smallspecs Spec String Workloads
