examples/cosimulate.mli:
