examples/medical_flow.mli:
