examples/medical_flow.ml: Agraph Core Designs Estimate Float List Medical Partitioning Printf Sim Spec String Workloads
