examples/explore_models.mli:
