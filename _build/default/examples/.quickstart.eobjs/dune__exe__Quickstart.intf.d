examples/quickstart.mli:
