examples/export_flow.mli:
