examples/quickstart.ml: Agraph Core Format List Partitioning Printf Sim Spec String Workloads
