examples/export_flow.ml: Core Designs Export Format List Medical Printf String Workloads
