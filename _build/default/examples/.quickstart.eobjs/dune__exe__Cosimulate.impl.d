examples/cosimulate.ml: Agraph Core Generator List Partitioning Printf Sim Spec String Workloads
