(** The paper's full experimental flow (Section 5) on the reconstructed
    medical system: three partitions with different local/global variable
    balances, refined under all four implementation models, compared on
    required bus transfer rates, then the winning model's output verified
    by co-simulation.

    Run with: [dune exec examples/medical_flow.exe] *)

open Workloads

let () =
  let spec = Medical.spec in
  let graph = Medical.graph in
  Printf.printf
    "medical system: %d lines, %d leaf behaviors, %d variables, %d channels\n\n"
    (Spec.Printer.line_count spec)
    (List.length Medical.leaf_names)
    (List.length Medical.variable_names)
    (Agraph.Access_graph.channel_count graph);

  List.iter
    (fun (d : Designs.design) ->
      let part = d.Designs.d_partition in
      let report = Partitioning.Classify.report graph part in
      Printf.printf "--- %s (%s): %d local / %d global variables ---\n"
        d.Designs.d_name d.Designs.d_description
        (List.length report.Partitioning.Classify.locals)
        (List.length report.Partitioning.Classify.globals);
      let env = Estimate.Rates.make_env spec Designs.allocation part in
      (* Required bus rate of every bus under each model. *)
      let scored =
        List.map
          (fun m ->
            let plan = Core.Bus_plan.build m graph part in
            let rates =
              List.filter_map
                (fun (b : Core.Bus_plan.bus) ->
                  match b.Core.Bus_plan.bus_edges with
                  | [] -> None
                  | edges ->
                    Some
                      ( Core.Bus_plan.role_label b.Core.Bus_plan.bus_role,
                        Estimate.Rates.bus_rate_mbps env edges ))
                plan.Core.Bus_plan.bp_buses
            in
            let worst =
              List.fold_left (fun acc (_, r) -> Float.max acc r) 0.0 rates
            in
            (m, rates, worst))
          Core.Model.all
      in
      List.iter
        (fun (m, rates, worst) ->
          Printf.printf "  %-7s max %6.0f Mbit/s   [%s]\n" (Core.Model.name m)
            worst
            (String.concat ", "
               (List.map
                  (fun (l, r) -> Printf.sprintf "%s=%.0f" l r)
                  rates)))
        scored;
      (* Pick the model with the lowest worst-case bus rate, refine, and
         verify the refinement by co-simulation. *)
      let best, _, _ =
        List.fold_left
          (fun (bm, br, bw) (m, r, w) ->
            if w < bw then (m, r, w) else (bm, br, bw))
          (List.hd scored) (List.tl scored)
      in
      let refined = Core.Refiner.refine spec graph part best in
      let verdict =
        Sim.Cosim.check ~original:spec ~refined:refined.Core.Refiner.rf_program
          ()
      in
      Printf.printf
        "  selected %s: %d buses, %d memories, %d -> %d lines, cosimulation %s\n\n"
        (Core.Model.name best)
        (List.length refined.Core.Refiner.rf_buses)
        (List.length refined.Core.Refiner.rf_memories)
        (Spec.Printer.line_count spec)
        (Spec.Printer.line_count refined.Core.Refiner.rf_program)
        (if verdict.Sim.Cosim.v_equivalent then "ok" else "FAILED"))
    Designs.all;

  print_endline
    "(the paper's conclusion reproduces: a single shared bus (Model1) is a \
     hot spot;\n\
     \ Model2 helps when locals dominate; Model3/Model4 spread global \
     traffic)"
