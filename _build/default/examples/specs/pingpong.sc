program pingpong is
  var n : int<16> := 0;
  behavior TOP : seq is
  begin
    behavior PING : leaf is
    begin
      n := n + 1;
      emit "ping" n;
    end behavior
    ;
    behavior PONG : leaf is
    begin
      n := n * 2;
      emit "pong" n;
    end behavior
    -> (n < 20) PING, complete;
  end behavior
end program
