program fir is
  var coeff : int<16>[4] := 0;
  var delay : int<16>[4] := 0;
  var sample : int<16> := 0;
  var output : int<16> := 0;
  var acc_energy : int<16> := 0;
  var n : int<8> := 0;
  var seed_v : int<16> := 7;
  behavior FIR : seq is
  begin
    behavior LOAD_COEFFS : leaf is
    begin
      coeff[0] := 3;
      coeff[1] := 5;
      coeff[2] := 5;
      coeff[3] := 3;
    end behavior
    ;
    behavior PRODUCE : leaf is
    begin
      seed_v := (seed_v * 13 + 41) % 128;
      sample := seed_v - 64;
    end behavior
    ;
    behavior FILTER : leaf is
      var k : int<8>;
      var sum : int<16> := 0;
    begin
      delay[3] := delay[2];
      delay[2] := delay[1];
      delay[1] := delay[0];
      delay[0] := sample;
      sum := 0;
      for k := 0 to 3 do
        sum := sum + coeff[k] * delay[k];
      end for;
      output := sum / 16;
    end behavior
    ;
    behavior COLLECT : leaf is
    begin
      acc_energy := acc_energy + output * output;
      n := n + 1;
      emit "y" output;
    end behavior
    -> (n < 10) PRODUCE, FIR_DONE;
    behavior FIR_DONE : leaf is
    begin
      emit "energy" acc_energy;
      emit "tail" delay[3];
    end behavior
    ;
  end behavior
end program
