program elevator is
  var floor : int<8> := 0;
  var target : int<8> := 0;
  var requests : int<8> := 0;
  var direction : int<8> := 0;
  var motor : int<8> := 0;
  var door : int<8> := 0;
  var trips : int<8> := 0;
  var wear : int<16> := 0;
  var overload : bool := false;
  var load : int<8> := 0;
  behavior ELEVATOR : seq is
  begin
    behavior E_INIT : leaf is
    begin
      requests := 45;
      floor := 0;
      direction := 0;
      motor := 0;
      door := 0;
      trips := 0;
      wear := 0;
      load := 3;
    end behavior
    ;
    behavior SCAN : leaf is
    begin
      target := requests % 6;
      if target > floor then
        direction := 1;
      elsif target < floor then
        direction := 2;
      else
        direction := 0;
      end if;
    end behavior
    ;
    behavior SERVICE : seq is
    begin
      behavior WEIGH : leaf is
      begin
        if load > 8 then
          overload := true;
        else
          overload := false;
        end if;
      end behavior
      ;
      behavior MOTOR_START : leaf is
      begin
        if not overload then
          motor := direction;
        else
          motor := 0;
        end if;
        wear := wear + motor * 3;
      end behavior
      ;
      behavior TRAVEL : leaf is
      begin
        while motor = 1 and floor < target do
          floor := floor + 1;
        end while;
        while motor = 2 and floor > target do
          floor := floor - 1;
        end while;
      end behavior
      ;
      behavior MOTOR_STOP : leaf is
      begin
        motor := 0;
      end behavior
      ;
      behavior CLEAR_REQUEST : leaf is
      begin
        requests := requests / 2;
      end behavior
      ;
      behavior DOOR_CYCLE : seq is
      begin
        behavior DOOR_OPEN : leaf is
        begin
          while door < 3 do
            door := door + 1;
          end while;
        end behavior
        ;
        behavior EXCHANGE : leaf is
        begin
          load := (load * 5 + 4) % 11;
          door := 3;
        end behavior
        ;
        behavior DOOR_CLOSE : leaf is
        begin
          while door > 0 do
            door := door - 1;
          end while;
        end behavior
        ;
      end behavior
      ;
      behavior LOG_TRIP : leaf is
      begin
        trips := trips + 1;
        emit "served" floor;
      end behavior
      ;
    end behavior
    -> (requests > 0 and trips < 8) SCAN, E_REPORT;
    behavior E_REPORT : leaf is
    begin
      emit "trips" trips;
      emit "wear" wear;
    end behavior
    ;
  end behavior
end program
