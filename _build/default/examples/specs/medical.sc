program medical is
  var mode : int<8> := 0;
  var sample : int<16> := 0;
  var sum : int<16> := 0;
  var count : int<8> := 0;
  var average : int<16> := 0;
  var threshold : int<16> := 0;
  var volume : int<16> := 0;
  var calib_gain : int<16> := 16;
  var calib_offset : int<16> := 0;
  var peak : int<16> := 0;
  var valid : bool := false;
  var display_code : int<16> := 0;
  var alarm_on : bool := false;
  var log_index : int<8> := 0;
  behavior MEDICAL : seq is
  begin
    behavior INIT : leaf is
    begin
      mode := 1;
      sum := 0;
      count := 0;
      calib_gain := 20;
      calib_offset := 5;
      log_index := 0;
    end behavior
    ;
    behavior SELF_TEST : leaf is
    begin
      if mode > 0 then
        valid := true;
      else
        valid := false;
      end if;
    end behavior
    ;
    behavior CALIB_SENSE : leaf is
    begin
      threshold := calib_gain * 8 + calib_offset;
    end behavior
    ;
    behavior MEASURE_CYCLE : seq is
    begin
      behavior ACQUIRE : leaf is
      begin
        sample := (mode * 17 + count * 13 + 23) % 101;
      end behavior
      ;
      behavior FILTER : leaf is
      begin
        sample := sample * calib_gain / 16;
      end behavior
      ;
      behavior ACCUMULATE : leaf is
      begin
        sum := sum + sample;
        count := count + 1;
      end behavior
      -> (count < 8) ACQUIRE, complete;
    end behavior
    ;
    behavior COMPUTE : seq is
    begin
      behavior AVERAGE_CALC : leaf is
      begin
        if count > 0 then
          average := sum / count;
        else
          average := 0;
        end if;
      end behavior
      ;
      behavior VOLUME_CALC : leaf is
      begin
        volume := average * calib_gain / 8 + calib_offset;
      end behavior
      ;
      behavior PEAK_TRACK : leaf is
      begin
        if volume > peak then
          peak := volume;
        end if;
      end behavior
      ;
    end behavior
    ;
    behavior ANALYZE : seq is
    begin
      behavior VALIDATE : leaf is
      begin
        if volume > 0 and sample >= 0 then
          valid := true;
        else
          valid := false;
        end if;
      end behavior
      ;
      behavior THRESH_CHECK : leaf is
      begin
        if valid and volume > threshold then
          alarm_on := true;
        else
          alarm_on := false;
        end if;
      end behavior
      ;
    end behavior
    ;
    behavior OUTPUT : seq is
    begin
      behavior DISPLAY : leaf is
      begin
        display_code := (volume + mode * 3) % 256;
      end behavior
      ;
      behavior ALARM : leaf is
      begin
        if alarm_on then
          display_code := 999;
        end if;
      end behavior
      ;
      behavior LOG : leaf is
      begin
        emit "log_volume" volume;
        log_index := log_index + 1;
      end behavior
      ;
    end behavior
    ;
    behavior NOTIFY : leaf is
    begin
      if valid and not alarm_on then
        mode := 2;
      else
        mode := 0;
      end if;
    end behavior
    ;
    behavior SHUTDOWN : leaf is
    begin
      emit "final_mode" mode;
      mode := mode - mode;
    end behavior
    ;
  end behavior
end program
