program fig2 is
  var v1 : int<16> := 1;
  var v2 : int<16> := 0;
  var v3 : int<16> := 2;
  var v4 : int<16> := 0;
  var v5 : int<16> := 0;
  var v6 : int<16> := 0;
  var v7 : int<16> := 0;
  behavior TOP : seq is
  begin
    behavior B1 : leaf is
    begin
      v1 := v1 + 1;
      v2 := v1 * 2;
      v4 := v2 + v1;
    end behavior
    ;
    behavior B2 : leaf is
    begin
      v5 := v2 + v3 + v4 + v7;
      emit "B2" v5;
    end behavior
    ;
    behavior B3 : leaf is
    begin
      v6 := v5 * 2;
      v7 := v6 + v5;
      emit "B3" v7;
    end behavior
    ;
    behavior B4 : leaf is
    begin
      emit "B4" v6 + v7 + v4;
    end behavior
    ;
  end behavior
end program
