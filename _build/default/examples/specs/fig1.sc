program fig1 is
  var x : int<16> := 0;
  behavior TOP : seq is
  begin
    behavior A : leaf is
    begin
      x := 3;
      emit "A" x;
    end behavior
    -> (x > 1) B, (x < 1) C;
    behavior B : leaf is
    begin
      x := x + 5;
      emit "B" x;
    end behavior
    -> complete;
    behavior C : leaf is
    begin
      emit "C" x;
    end behavior
    -> complete;
  end behavior
end program
