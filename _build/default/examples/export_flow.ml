(** Downstream-tool flow (paper, Section 1: the refined specification
    "can serve as an input for functional verification, behavioral
    synthesis or software compilation tools").

    This example takes the medical system through the complete flow and
    hands it to the downstream tools:

    1. the original functional model is compiled to sequential C (the
       software-compilation path) — written to [medical.c];
    2. the Design1/Model2 refinement is emitted as behavioral VHDL (the
       behavioral-synthesis path) — written to [medical_model2.vhd];
    3. quality metrics (execution time, code size, gate count, pins,
       memory shape) are estimated for every implementation model so the
       designer can judge the allocation's capacity.

    Run with: [dune exec examples/export_flow.exe] *)

open Workloads

let write path text =
  let oc = open_out path in
  output_string oc text;
  close_out oc;
  Printf.printf "wrote %s (%d lines)\n" path
    (List.length (String.split_on_char '\n' text))

let () =
  let spec = Medical.spec in
  let graph = Medical.graph in

  (* 1. Software compilation of the functional model. *)
  begin match Export.C_backend.emit_program spec with
  | Ok code -> write "medical.c" code
  | Error msg -> Printf.printf "C backend: %s\n" msg
  end;

  (* 2. Behavioral synthesis input for the refined design. *)
  let part = Designs.design1.Designs.d_partition in
  let refined = Core.Refiner.refine spec graph part Core.Model.Model2 in
  begin match Export.Vhdl.emit_program refined.Core.Refiner.rf_program with
  | Ok code -> write "medical_model2.vhd" code
  | Error msg -> Printf.printf "VHDL backend: %s\n" msg
  end;

  (* 3. Quality metrics across the four implementation models. *)
  print_endline "\n=== quality metrics (Design1) ===";
  List.iter
    (fun model ->
      let r = Core.Refiner.refine spec graph part model in
      let q = Core.Quality.of_refinement ~alloc:Designs.allocation r in
      Printf.printf "--- %s ---\n" (Core.Model.name model);
      Format.printf "@[<v>%a@]@." Core.Quality.pp q)
    Core.Model.all;

  (* The ASIC must stay within its 10k-gate / 75-pin budget (the paper's
     running allocation); flag it loudly if a model busts it. *)
  let busts =
    List.filter
      (fun model ->
        let r = Core.Refiner.refine spec graph part model in
        let q = Core.Quality.of_refinement ~alloc:Designs.allocation r in
        List.exists
          (fun c ->
            c.Core.Quality.cq_gates_ok = Some false
            || c.Core.Quality.cq_pins_ok = Some false)
          q.Core.Quality.q_components)
      Core.Model.all
  in
  match busts with
  | [] -> print_endline "all four models fit the ASIC10k allocation"
  | ms ->
    Printf.printf "over capacity: %s\n"
      (String.concat ", " (List.map Core.Model.name ms))
