(** Quickstart: the paper's Figure 1 example, end to end.

    We build a three-behavior specification (A, then B or C depending on
    x), partition it so that A and C run on a processor while B and the
    variable x go to an ASIC, refine it to Model2, and co-simulate the
    original against the refined design.

    Run with: [dune exec examples/quickstart.exe] *)

let () =
  (* 1. The input specification (Figure 1a).  Specs can also be written
     in the textual syntax and parsed with [Spec.Parser]. *)
  let spec = Workloads.Smallspecs.fig1 in
  print_endline "=== original specification ===";
  print_string (Spec.Printer.program_to_string spec);

  (* 2. Derive the access graph: behaviors, variables, channels. *)
  let graph = Agraph.Access_graph.of_program spec in
  Printf.printf "\naccess graph: %d objects, %d data channels\n"
    (List.length graph.Agraph.Access_graph.g_objects)
    (Agraph.Access_graph.channel_count graph);

  (* 3. The partition of Figure 1c: A, C on the processor; B and x on the
     ASIC. *)
  let partition = Workloads.Smallspecs.fig1_partition in
  Format.printf "@.=== partition ===@.%a@." Partitioning.Partition.pp partition;

  (* 4. Refine to Model2 (local memory + single-port global memory). *)
  let refined =
    Core.Refiner.refine spec graph partition Core.Model.Model2
  in
  Printf.printf "=== refined to %s ===\n" (Core.Model.name Core.Model.Model2);
  Printf.printf "buses: %s\n"
    (String.concat ", "
       (List.map
          (fun (b : Core.Refiner.bus_inst) ->
            b.Core.Refiner.bi_signals.Core.Protocol.bs_label)
          refined.Core.Refiner.rf_buses));
  Printf.printf "memories: %s\n"
    (String.concat ", " refined.Core.Refiner.rf_memories);
  Printf.printf "moved behaviors (B_CTRL/B_NEW pairs): %s\n"
    (String.concat ", " refined.Core.Refiner.rf_moved);
  Printf.printf "size: %d -> %d lines\n"
    (Spec.Printer.line_count spec)
    (Spec.Printer.line_count refined.Core.Refiner.rf_program);

  (* 5. The refined specification is an ordinary specification again —
     print a fragment and simulate it. *)
  print_endline "\n=== refined specification (first 40 lines) ===";
  let text = Spec.Printer.program_to_string refined.Core.Refiner.rf_program in
  String.split_on_char '\n' text
  |> List.filteri (fun i _ -> i < 40)
  |> List.iter print_endline;
  print_endline "  ...";

  (* 6. Functional equivalence: original and refined produce the same
     observable trace and final variable values. *)
  let verdict =
    Sim.Cosim.check ~original:spec ~refined:refined.Core.Refiner.rf_program ()
  in
  Format.printf "@.cosimulation: %a@." Sim.Cosim.pp_verdict verdict;
  if not verdict.Sim.Cosim.v_equivalent then exit 1
