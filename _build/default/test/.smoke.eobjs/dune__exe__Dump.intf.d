test/dump.mli:
