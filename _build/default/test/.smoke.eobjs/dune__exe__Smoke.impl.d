test/smoke.ml: Agraph Core Designs Elevator List Medical Printf Sim Smallspecs Spec String Workloads
