test/smoke2.mli:
