test/smoke.mli:
