test/smoke2.ml: Agraph Core Export Format List Printf Sim Spec String Workloads
