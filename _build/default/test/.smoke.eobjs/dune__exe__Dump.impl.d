test/dump.ml: Spec Workloads
