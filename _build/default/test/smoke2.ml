let () =
  let p = Workloads.Fir.spec in
  (match Spec.Typecheck.check p with Ok () -> print_endline "typed ok"
   | Error e -> print_endline ("TYPES: " ^ String.concat "; " e));
  let r = Sim.Engine.run p in
  Printf.printf "outcome=%s\n" (Sim.Engine.outcome_to_string r.Sim.Engine.r_outcome);
  List.iter (fun ev -> Format.printf "%s=%a " ev.Sim.Trace.ev_tag Spec.Expr.pp_value ev.Sim.Trace.ev_value) r.Sim.Engine.r_trace;
  print_newline ();
  let g = Workloads.Fir.graph in
  Printf.printf "channels=%d\n" (Agraph.Access_graph.channel_count g);
  (* parser roundtrip *)
  let p' = Spec.Parser.program_of_string_exn (Spec.Printer.program_to_string p) in
  Printf.printf "roundtrip=%b\n" (Spec.Ast.equal_program p p');
  List.iter (fun m ->
    List.iter (fun proto ->
      let options = { Core.Refiner.default_options with protocol = proto } in
      let r2 = Core.Refiner.refine ~options p g Workloads.Fir.partition m in
      (match Core.Check.run ~original:p r2 with
       | Ok () -> () | Error e -> Printf.printf "CHECK %s: %s\n" (Core.Model.name m) (String.concat ";" e));
      let v = Sim.Cosim.check ~original:p ~refined:r2.Core.Refiner.rf_program () in
      Printf.printf "%s/%s: %s (%d lines)\n" (Core.Model.name m) (Core.Protocol.style_name proto)
        (if v.Sim.Cosim.v_equivalent then "eq" else "DIVERGED: " ^ String.concat ";" v.Sim.Cosim.v_problems)
        (Spec.Printer.line_count r2.Core.Refiner.rf_program))
      [Core.Protocol.Four_phase; Core.Protocol.Two_phase]) Core.Model.all;
  (* C backend differential quickly *)
  (match Export.C_backend.emit_program p with
   | Ok _ -> print_endline "C gen ok" | Error m -> print_endline ("C: " ^ m));
  (match Export.Vhdl.emit_program p with
   | Ok _ -> print_endline "VHDL gen ok" | Error m -> print_endline ("VHDL: " ^ m))
