(** Tests for the estimators: the statement cost model, behavior
    lifetimes, and channel / bus transfer rates. *)

open Spec
open Helpers

let proc = Arch.Catalog.i8086
let asic = Arch.Catalog.asic_10k
let s = Parser.stmts_of_string_exn

let test_assign_cost () =
  let one = Estimate.Cost_model.stmt_cycles proc (s "x := 1;") in
  let two = Estimate.Cost_model.stmt_cycles proc (s "x := 1; y := 2;") in
  Alcotest.(check bool) "positive" true (one > 0.0);
  Alcotest.(check (float 1e-9)) "additive" (2.0 *. one) two

let test_expr_complexity_costs_more () =
  let simple = Estimate.Cost_model.stmt_cycles proc (s "x := 1;") in
  let complex = Estimate.Cost_model.stmt_cycles proc (s "x := a * b + c - d;") in
  Alcotest.(check bool) "complex > simple" true (complex > simple)

let test_for_loop_scales () =
  let short = Estimate.Cost_model.stmt_cycles proc (s "for i := 0 to 1 do x := 1; end for;") in
  let long = Estimate.Cost_model.stmt_cycles proc (s "for i := 0 to 9 do x := 1; end for;") in
  Alcotest.(check bool) "10 trips > 2 trips" true (long > 4.0 *. short)

let test_while_uses_config () =
  let body = s "while c do x := 1; end while;" in
  let few =
    Estimate.Cost_model.stmt_cycles
      ~config:{ Estimate.Cost_model.while_iterations = 2 } proc body
  in
  let many =
    Estimate.Cost_model.stmt_cycles
      ~config:{ Estimate.Cost_model.while_iterations = 20 } proc body
  in
  Alcotest.(check (float 1e-9)) "linear in iterations" (10.0 *. few) many

let test_if_takes_worst_branch () =
  let balanced = Estimate.Cost_model.stmt_cycles proc
      (s "if c then x := 1; else x := 1; end if;") in
  let skewed = Estimate.Cost_model.stmt_cycles proc
      (s "if c then x := 1; y := 2; z := 3; else x := 1; end if;") in
  Alcotest.(check bool) "worst branch" true (skewed > balanced)

let test_memory_cannot_execute () =
  Alcotest.check_raises "memory"
    (Invalid_argument "Cost_model.stmt_cycles: memory components execute no code")
    (fun () ->
      ignore (Estimate.Cost_model.stmt_cycles Arch.Catalog.sram_1k (s "x := 1;")))

let test_asic_vs_proc () =
  let stmts = s "x := a + b; y := x * 2;" in
  let pc = Estimate.Cost_model.stmt_cycles proc stmts in
  let ac = Estimate.Cost_model.stmt_cycles asic stmts in
  Alcotest.(check bool) "both positive" true (pc > 0.0 && ac > 0.0);
  (* The ASIC executes operations in fewer cycles than the 8086. *)
  Alcotest.(check bool) "asic cheaper in cycles" true (ac < pc)

(* --- lifetimes ------------------------------------------------------------ *)

let test_lifetime_positive_and_floored () =
  let empty =
    Program.make "p" (Behavior.leaf "l" [])
  in
  let t = Estimate.Lifetime.behavior_seconds empty proc "l" in
  Alcotest.(check bool) "floored at one cycle" true (t > 0.0)

let test_lifetime_seq_sums_par_maxes () =
  let leaf name n =
    Behavior.leaf name (List.init n (fun _ -> Ast.Assign ("x", Expr.int 1)))
  in
  let seq =
    Program.make ~vars:[ Builder.int_var "x" ] "p"
      (Behavior.seq "t" [ Behavior.arm (leaf "a" 4); Behavior.arm (leaf "b" 6) ])
  in
  let par =
    Program.make ~vars:[ Builder.int_var "x" ] "q"
      (Behavior.par "t" [ leaf "a" 4; leaf "b" 6 ])
  in
  let t_seq = Estimate.Lifetime.behavior_seconds seq proc "t" in
  let t_par = Estimate.Lifetime.behavior_seconds par proc "t" in
  let t_a = Estimate.Lifetime.behavior_seconds seq proc "a" in
  let t_b = Estimate.Lifetime.behavior_seconds seq proc "b" in
  Alcotest.(check (float 1e-12)) "seq sums" (t_a +. t_b) t_seq;
  Alcotest.(check (float 1e-12)) "par maxes" t_b t_par

let test_lifetime_unknown_behavior () =
  Alcotest.check_raises "unknown"
    (Invalid_argument "Lifetime: unknown behavior nope") (fun () ->
      ignore
        (Estimate.Lifetime.behavior_seconds Workloads.Smallspecs.fig1 proc "nope"))

let test_faster_clock_shorter_lifetime () =
  let slow = Estimate.Lifetime.behavior_seconds Workloads.Medical.spec Arch.Catalog.i8086 "MEDICAL" in
  let fast = Estimate.Lifetime.behavior_seconds Workloads.Medical.spec Arch.Catalog.sparc "MEDICAL" in
  Alcotest.(check bool) "sparc faster" true (fast < slow)

(* --- rates ------------------------------------------------------------------ *)

let medical_env d =
  Estimate.Rates.make_env Workloads.Medical.spec Workloads.Designs.allocation
    d.Workloads.Designs.d_partition

let test_channel_rate_positive () =
  let env = medical_env Workloads.Designs.design1 in
  List.iter
    (fun (e, r) ->
      if r <= 0.0 then
        Alcotest.failf "channel %s/%s has rate %f"
          e.Agraph.Access_graph.de_behavior e.Agraph.Access_graph.de_variable r)
    (Estimate.Rates.all_channel_rates env Workloads.Medical.graph)

let test_bus_rate_is_sum () =
  let env = medical_env Workloads.Designs.design1 in
  let edges = Workloads.Medical.graph.Agraph.Access_graph.g_data in
  let total = Estimate.Rates.bus_rate_mbps env edges in
  let sum =
    List.fold_left
      (fun acc e -> acc +. Estimate.Rates.channel_rate_mbps env e)
      0.0 edges
  in
  Alcotest.(check (float 1e-6)) "sum of channels" sum total

let test_rate_scales_with_width () =
  let env = medical_env Workloads.Designs.design1 in
  let e =
    List.hd Workloads.Medical.graph.Agraph.Access_graph.g_data
  in
  let wide = { e with Agraph.Access_graph.de_bits = e.Agraph.Access_graph.de_bits * 2 } in
  Alcotest.(check (float 1e-6)) "2x bits -> 2x rate"
    (2.0 *. Estimate.Rates.channel_rate_mbps env e)
    (Estimate.Rates.channel_rate_mbps env wide)

let test_rate_scales_with_count () =
  let env = medical_env Workloads.Designs.design1 in
  let e = List.hd Workloads.Medical.graph.Agraph.Access_graph.g_data in
  let busy = { e with Agraph.Access_graph.de_count = e.Agraph.Access_graph.de_count * 3 } in
  Alcotest.(check (float 1e-6)) "3x count -> 3x rate"
    (3.0 *. Estimate.Rates.channel_rate_mbps env e)
    (Estimate.Rates.channel_rate_mbps env busy)

let () =
  Alcotest.run "estimate"
    [
      ( "cost model",
        [
          tc "assign additive" test_assign_cost;
          tc "expr complexity" test_expr_complexity_costs_more;
          tc "for scaling" test_for_loop_scales;
          tc "while config" test_while_uses_config;
          tc "if worst branch" test_if_takes_worst_branch;
          tc "memory rejects" test_memory_cannot_execute;
          tc "asic vs processor" test_asic_vs_proc;
        ] );
      ( "lifetime",
        [
          tc "positive, floored" test_lifetime_positive_and_floored;
          tc "seq sums, par maxes" test_lifetime_seq_sums_par_maxes;
          tc "unknown behavior" test_lifetime_unknown_behavior;
          tc "clock scaling" test_faster_clock_shorter_lifetime;
        ] );
      ( "rates",
        [
          tc "channels positive" test_channel_rate_positive;
          tc "bus = sum of channels" test_bus_rate_is_sum;
          tc "width scaling" test_rate_scales_with_width;
          tc "count scaling" test_rate_scales_with_count;
        ] );
    ]
