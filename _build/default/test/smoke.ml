(* Quick end-to-end smoke: every workload x model refines, checks and
   co-simulates.  Run with [dune exec test/smoke.exe]. *)

let check_one name p part =
  let g = Agraph.Access_graph.of_program p in
  List.iter
    (fun model ->
      let r = Core.Refiner.refine p g part model in
      let chk =
        match Core.Check.run ~original:p r with
        | Ok () -> "ok"
        | Error m -> "FAILED: " ^ String.concat "; " m
      in
      let v = Sim.Cosim.check ~original:p ~refined:r.Core.Refiner.rf_program () in
      Printf.printf "%-10s %-7s check=%s cosim=%s lines=%d/%d\n%!" name
        (Core.Model.name model) chk
        (if v.Sim.Cosim.v_equivalent then "eq" else "DIVERGED")
        (Spec.Printer.line_count r.Core.Refiner.rf_program)
        (Spec.Printer.line_count p))
    Core.Model.all

let () =
  let open Workloads in
  check_one "fig1" Smallspecs.fig1 Smallspecs.fig1_partition;
  check_one "fig2" Smallspecs.fig2 Smallspecs.fig2_partition;
  check_one "pingpong" Smallspecs.ping_pong Smallspecs.ping_pong_partition;
  check_one "elevator" Elevator.spec Elevator.partition;
  List.iter
    (fun (d : Designs.design) ->
      check_one d.Designs.d_name Medical.spec d.Designs.d_partition)
    Designs.all
