let () =
  let dump name p = 
    let oc = open_out ("examples/specs/" ^ name ^ ".sc") in
    output_string oc (Spec.Printer.program_to_string p); close_out oc in
  dump "fig1" Workloads.Smallspecs.fig1;
  dump "fig2" Workloads.Smallspecs.fig2;
  dump "pingpong" Workloads.Smallspecs.ping_pong;
  dump "medical" Workloads.Medical.spec;
  dump "elevator" Workloads.Elevator.spec;
  dump "fir" Workloads.Fir.spec
