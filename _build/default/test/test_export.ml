(** Tests for the code-generation backends.

    The C backend is tested {e differentially}: the generated program is
    compiled with the system C compiler, executed, and its [EMIT]/[FINAL]
    output compared line by line against the reference simulator.  The
    VHDL backend (no VHDL simulator in this environment) is tested
    structurally. *)

open Helpers

let contains ~sub s =
  let n = String.length sub and m = String.length s in
  let rec go i = i + n <= m && (String.sub s i n = sub || go (i + 1)) in
  n = 0 || go 0

let count_occurrences ~sub s =
  let n = String.length sub and m = String.length s in
  let rec go i acc =
    if i + n > m then acc
    else if String.sub s i n = sub then go (i + 1) (acc + 1)
    else go (i + 1) acc
  in
  if n = 0 then 0 else go 0 0

(* --- C backend: differential testing ------------------------------------- *)

let run_command cmd =
  let ic = Unix.open_process_in cmd in
  let buf = Buffer.create 256 in
  (try
     while true do
       Buffer.add_channel buf ic 1
     done
   with End_of_file -> ());
  let status = Unix.close_process_in ic in
  (status, Buffer.contents buf)

let compile_and_run c_source =
  let dir = Filename.temp_file "coref" "" in
  Sys.remove dir;
  Unix.mkdir dir 0o755;
  let src = Filename.concat dir "gen.c" in
  let exe = Filename.concat dir "gen.exe" in
  let oc = open_out src in
  output_string oc c_source;
  close_out oc;
  let status, diagnostics =
    run_command (Printf.sprintf "cc -std=c99 -Wall -o %s %s 2>&1" exe src)
  in
  begin match status with
  | Unix.WEXITED 0 -> ()
  | _ -> Alcotest.failf "cc failed:\n%s" diagnostics
  end;
  let status, output = run_command exe in
  begin match status with
  | Unix.WEXITED 0 -> ()
  | _ -> Alcotest.fail "generated program crashed"
  end;
  output

let num_pp ppf = function
  | Spec.Ast.VInt n -> Format.pp_print_int ppf n
  | Spec.Ast.VBool true -> Format.pp_print_int ppf 1
  | Spec.Ast.VBool false -> Format.pp_print_int ppf 0

(* The expected EMIT/FINAL transcript from the reference simulator. *)
let simulator_transcript p =
  let r = run_ok p in
  let buf = Buffer.create 256 in
  List.iter
    (fun e ->
      Buffer.add_string buf
        (Format.asprintf "EMIT %s %a\n" e.Sim.Trace.ev_tag num_pp
           e.Sim.Trace.ev_value))
    r.Sim.Engine.r_trace;
  let final_names =
    List.concat_map
      (fun (v : Spec.Ast.var_decl) ->
        match v.Spec.Ast.v_ty with
        | Spec.Ast.TArray (_, size) ->
          List.init size (fun i -> Printf.sprintf "%s[%d]" v.Spec.Ast.v_name i)
        | Spec.Ast.TBool | Spec.Ast.TInt _ -> [ v.Spec.Ast.v_name ])
      p.Spec.Ast.p_vars
  in
  List.iter
    (fun name ->
      match List.assoc_opt name r.Sim.Engine.r_final with
      | Some value ->
        Buffer.add_string buf
          (Format.asprintf "FINAL %s %a\n" name num_pp value)
      | None -> ())
    final_names;
  Buffer.contents buf

let differential p =
  match Export.C_backend.emit_program p with
  | Error msg -> Alcotest.failf "C generation failed: %s" msg
  | Ok source ->
    let got = compile_and_run source in
    let expected = simulator_transcript p in
    Alcotest.(check string) "C output matches simulator" expected got

let test_c_fig1 () = differential Workloads.Smallspecs.fig1
let test_c_fig2 () = differential Workloads.Smallspecs.fig2
let test_c_ping_pong () = differential Workloads.Smallspecs.ping_pong
let test_c_medical () = differential Workloads.Medical.spec

let test_c_fir_arrays () = differential Workloads.Fir.spec

let test_c_generated () =
  (* A batch of seeded random sequential specifications. *)
  List.iter
    (fun seed ->
      differential
        (Workloads.Generator.program
           { Workloads.Generator.default_config with gen_seed = seed }))
    [ 101; 202; 303; 404; 505 ]

let test_c_rejects_signals () =
  let p =
    Spec.Program.make
      ~signals:[ Spec.Builder.bool_signal "s" ]
      "p"
      (Spec.Behavior.leaf "l" [])
  in
  match Export.C_backend.emit_program p with
  | Error msg -> Alcotest.(check bool) "mentions signals" true
                   (contains ~sub:"signal" msg)
  | Ok _ -> Alcotest.fail "expected rejection"

let test_c_rejects_parallel () =
  let p =
    Spec.Program.make "p"
      (Spec.Behavior.seq "top"
         [
           Spec.Behavior.arm
             (Spec.Behavior.par "inner" [ Spec.Behavior.leaf "l" [] ]);
         ])
  in
  match Export.C_backend.emit_program p with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "expected rejection"

(* --- process splitting ------------------------------------------------------ *)

let test_split_refined_medical () =
  let r =
    refine Workloads.Medical.spec
      Workloads.Designs.design1.Workloads.Designs.d_partition Core.Model.Model2
  in
  match Export.Process_split.split r.Core.Refiner.rf_program with
  | Error msg -> Alcotest.failf "split failed: %s" msg
  | Ok procs ->
    (* main + B_NEWs + 3 memories + arbiters, all as separate processes *)
    Alcotest.(check bool) "many processes" true (List.length procs > 5);
    let servers =
      List.filter (fun pi -> pi.Export.Process_split.pi_server) procs
    in
    Alcotest.(check bool) "servers marked" true (List.length servers > 0);
    (* exactly one non-server process: the main control tree *)
    Alcotest.(check int) "one main" 1
      (List.length procs - List.length servers)

let test_split_shared_vars () =
  (* Multi-port memory storage must be classified as shared. *)
  let r =
    refine Workloads.Smallspecs.fig2 Workloads.Smallspecs.fig2_partition
      Core.Model.Model3
  in
  match Export.Process_split.split r.Core.Refiner.rf_program with
  | Error msg -> Alcotest.failf "split failed: %s" msg
  | Ok procs ->
    let gmem_ports =
      List.filter
        (fun pi ->
          contains ~sub:"GMEM_1" pi.Export.Process_split.pi_name
          || contains ~sub:"GMEM_1_port" pi.Export.Process_split.pi_name)
        procs
    in
    Alcotest.(check int) "two ports split" 2 (List.length gmem_ports);
    List.iter
      (fun pi ->
        Alcotest.(check bool) "storage shared" true
          (List.exists
             (fun (v : Spec.Ast.var_decl) -> v.Spec.Ast.v_name = "v5")
             pi.Export.Process_split.pi_shared_vars))
      gmem_ports

let test_split_rejects_par_under_seq () =
  let p =
    Spec.Program.make "p"
      (Spec.Behavior.seq "top"
         [
           Spec.Behavior.arm
             (Spec.Behavior.par "inner" [ Spec.Behavior.leaf "l" [] ]);
         ])
  in
  match Export.Process_split.split p with
  | Error msg -> Alcotest.(check bool) "informative" true
                   (contains ~sub:"inner" msg)
  | Ok _ -> Alcotest.fail "expected rejection"

(* --- VHDL backend: structural ------------------------------------------------ *)

let vhdl_of p =
  match Export.Vhdl.emit_program p with
  | Ok code -> code
  | Error msg -> Alcotest.failf "VHDL generation failed: %s" msg

let test_vhdl_original_structure () =
  let code = vhdl_of Workloads.Medical.spec in
  Alcotest.(check bool) "entity" true (contains ~sub:"entity medical is" code);
  Alcotest.(check bool) "architecture" true
    (contains ~sub:"architecture behavioral of medical is" code);
  (* One sequential top behavior: exactly one process. *)
  Alcotest.(check int) "one process" 1 (count_occurrences ~sub:": process" code);
  Alcotest.(check bool) "state machine" true (contains ~sub:"case st_" code);
  (* Program variables become shared storage. *)
  Alcotest.(check bool) "storage" true
    (contains ~sub:"shared variable volume : integer" code)

let test_vhdl_refined_structure () =
  let r =
    refine Workloads.Smallspecs.fig2 Workloads.Smallspecs.fig2_partition
      Core.Model.Model2
  in
  let prog = r.Core.Refiner.rf_program in
  let code = vhdl_of prog in
  let expected_processes =
    match Export.Process_split.split prog with
    | Ok procs -> List.length procs
    | Error _ -> 0
  in
  Alcotest.(check int) "process per concurrent unit" expected_processes
    (count_occurrences ~sub:": process" code);
  (* Bus wires become architecture signals. *)
  Alcotest.(check bool) "bus start signal" true
    (contains ~sub:"signal bus_global_start : boolean" code);
  (* The handshake procedures appear in the callers' declarative parts. *)
  Alcotest.(check bool) "master procedures" true
    (contains ~sub:"procedure MST_receive_bus_global" code);
  (* Handshake waits survive. *)
  Alcotest.(check bool) "waits" true (contains ~sub:"wait until" code)

let test_vhdl_all_models () =
  List.iter
    (fun model ->
      let r =
        refine Workloads.Medical.spec
          Workloads.Designs.design3.Workloads.Designs.d_partition model
      in
      let code = vhdl_of r.Core.Refiner.rf_program in
      Alcotest.(check bool)
        (Core.Model.name model ^ " nonempty")
        true
        (String.length code > 2000))
    Core.Model.all

let test_vhdl_keyword_renaming () =
  let p =
    Spec.Program.make
      ~vars:[ Spec.Builder.int_var "loop" ]
      "p"
      (Spec.Behavior.leaf "l" [ Spec.Ast.Assign ("loop", Spec.Expr.int 1) ])
  in
  let code = vhdl_of p in
  Alcotest.(check bool) "renamed" true (contains ~sub:"loop_v" code)

let () =
  Alcotest.run "export"
    [
      ( "c backend (differential vs simulator)",
        [
          tc "fig1" test_c_fig1;
          tc "fig2" test_c_fig2;
          tc "ping-pong" test_c_ping_pong;
          tc "medical" test_c_medical;
          tc "fir (arrays)" test_c_fir_arrays;
          tc "generated specs" test_c_generated;
          tc "rejects signals" test_c_rejects_signals;
          tc "rejects parallel" test_c_rejects_parallel;
        ] );
      ( "process splitting",
        [
          tc "refined medical" test_split_refined_medical;
          tc "shared storage" test_split_shared_vars;
          tc "par under seq rejected" test_split_rejects_par_under_seq;
        ] );
      ( "vhdl backend (structural)",
        [
          tc "original structure" test_vhdl_original_structure;
          tc "refined structure" test_vhdl_refined_structure;
          tc "all models" test_vhdl_all_models;
          tc "keyword renaming" test_vhdl_keyword_renaming;
        ] );
    ]
