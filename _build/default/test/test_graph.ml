(** Tests for the access-graph derivation (paper, Figure 1a / Figure 2). *)

open Agraph
open Helpers

let fig1 = Workloads.Smallspecs.fig1
let fig2 = Workloads.Smallspecs.fig2
let g1 = Access_graph.of_program fig1
let g2 = Access_graph.of_program fig2

let edge_exists g behavior variable dir =
  List.exists
    (fun (e : Access_graph.data_edge) ->
      String.equal e.Access_graph.de_behavior behavior
      && String.equal e.Access_graph.de_variable variable
      && e.Access_graph.de_dir = dir)
    g.Access_graph.g_data

let test_default_objects () =
  Alcotest.(check (list string))
    "fig1 leaves" [ "A"; "B"; "C" ]
    (Access_graph.default_objects fig1);
  Alcotest.(check (list string))
    "fig2 leaves" [ "B1"; "B2"; "B3"; "B4" ]
    (Access_graph.default_objects fig2)

let test_fig1_edges () =
  (* A writes x and reads it (emit + TOC conditions), B reads and writes,
     C reads. *)
  Alcotest.(check bool) "A writes x" true (edge_exists g1 "A" "x" Access_graph.Dwrite);
  Alcotest.(check bool) "A reads x" true (edge_exists g1 "A" "x" Access_graph.Dread);
  Alcotest.(check bool) "B reads x" true (edge_exists g1 "B" "x" Access_graph.Dread);
  Alcotest.(check bool) "B writes x" true (edge_exists g1 "B" "x" Access_graph.Dwrite);
  Alcotest.(check bool) "C reads x" true (edge_exists g1 "C" "x" Access_graph.Dread);
  Alcotest.(check bool) "C no write" false (edge_exists g1 "C" "x" Access_graph.Dwrite)

let test_fig1_control () =
  let arcs =
    List.map
      (fun (e : Access_graph.control_edge) ->
        (e.Access_graph.ce_src, e.Access_graph.ce_dst))
      g1.Access_graph.g_control
  in
  Alcotest.(check (list (pair string string)))
    "A->B and A->C" [ ("A", "B"); ("A", "C") ] arcs

let test_fig1_conditions () =
  let conds =
    List.filter_map
      (fun (e : Access_graph.control_edge) -> e.Access_graph.ce_cond)
      g1.Access_graph.g_control
  in
  Alcotest.(check int) "both conditional" 2 (List.length conds)

let test_fallthrough_control () =
  let g = Access_graph.of_program fig2 in
  (* B1..B4 fall through: 3 unconditional arcs. *)
  let arcs =
    List.map
      (fun (e : Access_graph.control_edge) ->
        (e.Access_graph.ce_src, e.Access_graph.ce_dst))
      g.Access_graph.g_control
  in
  Alcotest.(check (list (pair string string)))
    "chain" [ ("B1", "B2"); ("B2", "B3"); ("B3", "B4") ] arcs

let test_fig2_locality_profile () =
  Alcotest.(check (list string))
    "vars" [ "v1"; "v2"; "v3"; "v4"; "v5"; "v6"; "v7" ]
    g2.Access_graph.g_variables;
  Alcotest.(check (list string)) "v6 users" [ "B3"; "B4" ]
    (Access_graph.behaviors_accessing g2 "v6");
  Alcotest.(check (list string)) "v4 users" [ "B1"; "B2"; "B4" ]
    (Access_graph.behaviors_accessing g2 "v4")

let test_channel_count_medical () =
  Alcotest.(check int) "52 channels" 52
    (Access_graph.channel_count Workloads.Medical.graph)

let test_edge_bits () =
  let e =
    {
      Access_graph.de_behavior = "b";
      de_variable = "v";
      de_dir = Access_graph.Dread;
      de_count = 3;
      de_bits = 16;
    }
  in
  Alcotest.(check int) "bits" 48 (Access_graph.edge_bits e)

let test_composite_objects () =
  (* Treating a composite as one object aggregates its subtree accesses. *)
  let g =
    Access_graph.of_program
      ~objects:[ "MEASURE_CYCLE"; "COMPUTE" ]
      Workloads.Medical.spec
  in
  Alcotest.(check (list string)) "objects" [ "MEASURE_CYCLE"; "COMPUTE" ]
    g.Access_graph.g_objects;
  Alcotest.(check bool) "cycle writes sample" true
    (edge_exists g "MEASURE_CYCLE" "sample" Access_graph.Dwrite);
  Alcotest.(check bool) "compute reads sum" true
    (edge_exists g "COMPUTE" "sum" Access_graph.Dread)

let test_nested_objects_rejected () =
  Alcotest.check_raises "nested"
    (Invalid_argument "object ACQUIRE is nested inside object MEASURE_CYCLE")
    (fun () ->
      ignore
        (Access_graph.of_program
           ~objects:[ "MEASURE_CYCLE"; "ACQUIRE" ]
           Workloads.Medical.spec))

let test_unknown_object_rejected () =
  Alcotest.check_raises "unknown"
    (Invalid_argument "unknown object behavior NOPE") (fun () ->
      ignore (Access_graph.of_program ~objects:[ "NOPE" ] fig1))

let test_while_iterations_scale_counts () =
  let count g name =
    List.fold_left
      (fun acc (e : Access_graph.data_edge) ->
        if String.equal e.Access_graph.de_behavior name then
          acc + e.Access_graph.de_count
        else acc)
      0 g.Access_graph.g_data
  in
  let p = Workloads.Smallspecs.ping_pong in
  let low = Access_graph.of_program ~while_iterations:1 p in
  let high = Access_graph.of_program ~while_iterations:64 p in
  (* ping_pong has no loops inside leaves, so identical. *)
  Alcotest.(check int) "no loops: same" (count low "PING") (count high "PING");
  let med_low =
    Access_graph.of_program ~while_iterations:1 Workloads.Medical.spec
  in
  let med_high =
    Access_graph.of_program ~while_iterations:64 Workloads.Medical.spec
  in
  Alcotest.(check int) "channel structure stable"
    (Access_graph.channel_count med_low)
    (Access_graph.channel_count med_high)

let contains ~sub s =
  let n = String.length sub and m = String.length s in
  let rec go i = i + n <= m && (String.sub s i n = sub || go (i + 1)) in
  n = 0 || go 0

let test_dot_output () =
  let dot = Access_graph.to_dot g1 in
  Alcotest.(check bool) "digraph" true
    (String.length dot > 0 && String.sub dot 0 7 = "digraph");
  List.iter
    (fun frag -> Alcotest.(check bool) frag true (contains ~sub:frag dot))
    [ "\"A\""; "\"x\""; "shape=box"; "shape=ellipse" ]

let prop_graph_wellformed =
  QCheck.Test.make ~count:50 ~name:"graph edges reference known nodes"
    QCheck.(make Gen.(int_range 1 5000))
    (fun seed ->
      let p =
        Workloads.Generator.program
          { Workloads.Generator.default_config with gen_seed = seed }
      in
      let g = Access_graph.of_program p in
      List.for_all
        (fun (e : Access_graph.data_edge) ->
          List.mem e.Access_graph.de_behavior g.Access_graph.g_objects
          && List.mem e.Access_graph.de_variable g.Access_graph.g_variables
          && e.Access_graph.de_count > 0
          && e.Access_graph.de_bits > 0)
        g.Access_graph.g_data)

let prop_no_duplicate_channels =
  QCheck.Test.make ~count:50 ~name:"channels are unique per (b,v,dir)"
    QCheck.(make Gen.(int_range 1 5000))
    (fun seed ->
      let p =
        Workloads.Generator.program
          { Workloads.Generator.default_config with gen_seed = seed }
      in
      let g = Access_graph.of_program p in
      let keys =
        List.map
          (fun (e : Access_graph.data_edge) ->
            (e.Access_graph.de_behavior, e.Access_graph.de_variable,
             e.Access_graph.de_dir))
          g.Access_graph.g_data
      in
      List.length keys = List.length (List.sort_uniq compare keys))

let () =
  Alcotest.run "agraph"
    [
      ( "derivation",
        [
          tc "default objects" test_default_objects;
          tc "fig1 data edges" test_fig1_edges;
          tc "fig1 control arcs" test_fig1_control;
          tc "fig1 conditions" test_fig1_conditions;
          tc "fall-through arcs" test_fallthrough_control;
          tc "fig2 locality" test_fig2_locality_profile;
          tc "medical 52 channels" test_channel_count_medical;
          tc "edge bits" test_edge_bits;
        ] );
      ( "objects",
        [
          tc "composite objects" test_composite_objects;
          tc "nested rejected" test_nested_objects_rejected;
          tc "unknown rejected" test_unknown_object_rejected;
        ] );
      ( "profiles",
        [
          tc "while-iteration scaling" test_while_iterations_scale_counts;
          tc "dot output" test_dot_output;
        ] );
      ( "properties",
        [
          QCheck_alcotest.to_alcotest prop_graph_wellformed;
          QCheck_alcotest.to_alcotest prop_no_duplicate_channels;
        ] );
    ]
