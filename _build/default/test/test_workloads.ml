(** Tests pinning the experimental workloads to the paper's published
    profile: the medical system's 16 behaviors / 14 variables / 52
    channels, the three designs' local/global balances, and the generator's
    guarantees. *)

open Helpers

let test_medical_profile () =
  Alcotest.(check int) "16 leaf behaviors" 16
    (List.length Workloads.Medical.objects);
  Alcotest.(check int) "14 variables" 14
    (List.length Workloads.Medical.variable_names);
  Alcotest.(check int) "52 channels" 52
    (Agraph.Access_graph.channel_count Workloads.Medical.graph)

let test_medical_objects_are_leaves () =
  Alcotest.(check (list string)) "leaf set" Workloads.Medical.leaf_names
    Workloads.Medical.objects

let test_medical_validates_and_runs () =
  ignore (Spec.Program.validate_exn Workloads.Medical.spec);
  let r = run_ok Workloads.Medical.spec in
  Alcotest.(check bool) "emits log" true (trace_values "log_volume" r <> [])

let test_medical_computation_sane () =
  (* 8 measurement iterations, positive average and volume, alarm state
     consistent with the threshold comparison. *)
  let r = run_ok Workloads.Medical.spec in
  check_value "count is 8" (vint 8) (final r "count");
  (match final r "volume" with
  | Spec.Ast.VInt v -> Alcotest.(check bool) "volume > 0" true (v > 0)
  | _ -> Alcotest.fail "volume not an int");
  match (final r "alarm_on", final r "volume", final r "threshold") with
  | Spec.Ast.VBool alarm, Spec.Ast.VInt v, Spec.Ast.VInt th ->
    Alcotest.(check bool) "alarm consistent" alarm (v > th)
  | _ -> Alcotest.fail "unexpected value kinds"

let test_design_balances () =
  let counts (d : Workloads.Designs.design) =
    let r =
      Partitioning.Classify.report Workloads.Medical.graph
        d.Workloads.Designs.d_partition
    in
    ( List.length r.Partitioning.Classify.locals,
      List.length r.Partitioning.Classify.globals )
  in
  let l1, g1 = counts Workloads.Designs.design1 in
  let l2, g2 = counts Workloads.Designs.design2 in
  let l3, g3 = counts Workloads.Designs.design3 in
  Alcotest.(check bool) "design1 balanced" true (l1 = g1);
  Alcotest.(check bool) "design2 local-heavy" true (l2 > g2);
  Alcotest.(check bool) "design3 global-heavy" true (l3 < g3);
  Alcotest.(check int) "all 14 classified (d1)" 14 (l1 + g1);
  Alcotest.(check int) "all 14 classified (d2)" 14 (l2 + g2);
  Alcotest.(check int) "all 14 classified (d3)" 14 (l3 + g3)

let test_designs_cover_graph () =
  List.iter
    (fun (d : Workloads.Designs.design) ->
      match
        Partitioning.Partition.complete_for Workloads.Medical.graph
          d.Workloads.Designs.d_partition
      with
      | Ok () -> ()
      | Error msgs ->
        Alcotest.failf "%s: %s" d.Workloads.Designs.d_name
          (String.concat "; " msgs))
    Workloads.Designs.all

let test_designs_use_both_components () =
  List.iter
    (fun (d : Workloads.Designs.design) ->
      List.iter
        (fun i ->
          Alcotest.(check bool)
            (Printf.sprintf "%s has behaviors on %d" d.Workloads.Designs.d_name i)
            true
            (Partitioning.Partition.behaviors_in d.Workloads.Designs.d_partition i
            <> []))
        [ 0; 1 ])
    Workloads.Designs.all

let test_fig_specs_profiles () =
  let g2 = Agraph.Access_graph.of_program Workloads.Smallspecs.fig2 in
  let r = Partitioning.Classify.report g2 Workloads.Smallspecs.fig2_partition in
  (* The paper's Figure 2: v1 v2 v3 v6 local, v4 v5 v7 global. *)
  Alcotest.(check (list string)) "locals" [ "v1"; "v2"; "v3"; "v6" ]
    r.Partitioning.Classify.locals;
  Alcotest.(check (list string)) "globals" [ "v4"; "v5"; "v7" ]
    r.Partitioning.Classify.globals

let test_generator_determinism () =
  let cfg = { Workloads.Generator.default_config with gen_seed = 77 } in
  let p1 = Workloads.Generator.program cfg in
  let p2 = Workloads.Generator.program cfg in
  Alcotest.(check bool) "same seed, same program" true
    (Spec.Ast.equal_program p1 p2);
  let p3 =
    Workloads.Generator.program
      { Workloads.Generator.default_config with gen_seed = 78 }
  in
  Alcotest.(check bool) "different seed differs" false
    (Spec.Ast.equal_program p1 p3)

let test_generator_respects_config () =
  let cfg =
    {
      Workloads.Generator.default_config with
      gen_seed = 5;
      gen_vars = 9;
      gen_leaves = 11;
    }
  in
  let p = Workloads.Generator.program cfg in
  let g = Agraph.Access_graph.of_program p in
  Alcotest.(check int) "vars" 9 (List.length g.Agraph.Access_graph.g_variables);
  Alcotest.(check int) "leaves" 11 (List.length g.Agraph.Access_graph.g_objects)

let test_generator_parallel_branches_disjoint () =
  let cfg =
    {
      Workloads.Generator.default_config with
      gen_seed = 9;
      gen_par_branches = 3;
      gen_vars = 9;
      gen_leaves = 9;
    }
  in
  let p = Workloads.Generator.program cfg in
  match p.Spec.Ast.p_top.Spec.Ast.b_body with
  | Spec.Ast.Par branches ->
    let vars_of b =
      List.filter
        (fun v -> String.length v > 0 && v.[0] = 'g')
        (Spec.Behavior.fold
           (fun acc b ->
             match b.Spec.Ast.b_body with
             | Spec.Ast.Leaf stmts ->
               Spec.Stmt.reads stmts @ Spec.Stmt.writes stmts @ acc
             | _ -> acc)
           [] b)
      |> List.sort_uniq String.compare
    in
    let sets = List.map vars_of branches in
    List.iteri
      (fun i si ->
        List.iteri
          (fun j sj ->
            if i < j then
              List.iter
                (fun v ->
                  if List.mem v sj then
                    Alcotest.failf "branches %d and %d share %s" i j v)
                si)
          sets)
      sets
  | _ -> Alcotest.fail "expected parallel top"

let test_elevator_profile () =
  ignore (Spec.Program.validate_exn Workloads.Elevator.spec);
  (match Spec.Typecheck.check Workloads.Elevator.spec with
  | Ok () -> ()
  | Error e -> Alcotest.failf "types: %s" (String.concat "; " e));
  Alcotest.(check int) "12 leaf objects" 12
    (List.length Workloads.Elevator.graph.Agraph.Access_graph.g_objects);
  Alcotest.(check int) "10 variables" 10
    (List.length Workloads.Elevator.graph.Agraph.Access_graph.g_variables)

let test_elevator_serves_all_requests () =
  let r = run_ok Workloads.Elevator.spec in
  (* The service loop drains the request queue (45 -> 0 in 6 halvings). *)
  check_value "queue drained" (vint 0) (final r "requests");
  Alcotest.(check int) "six services" 6
    (List.length (trace_values "served" r));
  check_value "trips counted" (vint 6) (final r "trips");
  check_value "door closed at end" (vint 0) (final r "door")

let test_elevator_partition_covers () =
  match
    Partitioning.Partition.complete_for Workloads.Elevator.graph
      Workloads.Elevator.partition
  with
  | Ok () -> ()
  | Error m -> Alcotest.failf "incomplete: %s" (String.concat "; " m)

let test_fir_profile_and_filter () =
  ignore (Spec.Program.validate_exn Workloads.Fir.spec);
  (match Spec.Typecheck.check Workloads.Fir.spec with
  | Ok () -> ()
  | Error errs -> Alcotest.failf "types: %s" (String.concat "; " errs));
  let r = run_ok Workloads.Fir.spec in
  Alcotest.(check int) "10 outputs" 10 (List.length (trace_values "y" r));
  check_value "10 samples" (vint 10) (final r "n");
  (* The energy accumulator must match the sum of squared outputs. *)
  let energy =
    List.fold_left
      (fun acc v -> match v with Spec.Ast.VInt y -> acc + (y * y) | _ -> acc)
      0 (trace_values "y" r)
  in
  check_value "energy consistent" (vint energy) (final r "acc_energy");
  (* The delay line's tail equals the 4th-newest sample. *)
  Alcotest.(check bool) "tail emitted" true (trace_values "tail" r <> [])

let test_fir_addresses_cover_arrays () =
  let a = Core.Address.build Workloads.Fir.spec in
  Alcotest.(check int) "coeff base" 0 (Core.Address.address a "coeff");
  Alcotest.(check int) "delay after coeff" 4 (Core.Address.address a "delay");
  Alcotest.(check int) "scalars after arrays" 8 (Core.Address.address a "sample");
  (* 8 array slots + 5 scalars = 13 addresses -> 4-bit address bus *)
  Alcotest.(check int) "addr width" 4 a.Core.Address.addr_width

let prop_generated_valid =
  QCheck.Test.make ~count:60 ~name:"generated specs validate"
    QCheck.(make Gen.(int_range 1 100_000))
    (fun seed ->
      let p =
        Workloads.Generator.program
          { Workloads.Generator.default_config with gen_seed = seed }
      in
      Spec.Program.validate p = Ok ())

let () =
  Alcotest.run "workloads"
    [
      ( "medical",
        [
          tc "paper profile 16/14/52" test_medical_profile;
          tc "objects are the leaves" test_medical_objects_are_leaves;
          tc "validates and runs" test_medical_validates_and_runs;
          tc "computation sane" test_medical_computation_sane;
        ] );
      ( "designs",
        [
          tc "local/global balances" test_design_balances;
          tc "cover the graph" test_designs_cover_graph;
          tc "use both components" test_designs_use_both_components;
          tc "fig2 classification" test_fig_specs_profiles;
        ] );
      ( "elevator",
        [
          tc "profile" test_elevator_profile;
          tc "serves all requests" test_elevator_serves_all_requests;
          tc "partition covers" test_elevator_partition_covers;
        ] );
      ( "fir",
        [
          tc "profile and filter" test_fir_profile_and_filter;
          tc "array addressing" test_fir_addresses_cover_arrays;
        ] );
      ( "generator",
        [
          tc "determinism" test_generator_determinism;
          tc "respects config" test_generator_respects_config;
          tc "parallel branches disjoint" test_generator_parallel_branches_disjoint;
          QCheck_alcotest.to_alcotest prop_generated_valid;
        ] );
    ]
