(** Tests for the quality-metric estimator (performance, code size, gate
    count, pins, memory shape). *)

open Helpers

let quality design model =
  let r =
    refine Workloads.Medical.spec design.Workloads.Designs.d_partition model
  in
  (r, Core.Quality.of_refinement ~alloc:Workloads.Designs.allocation r)

let test_component_kinds () =
  let _, q = quality Workloads.Designs.design1 Core.Model.Model2 in
  Alcotest.(check int) "two components" 2
    (List.length q.Core.Quality.q_components);
  let proc = List.nth q.Core.Quality.q_components 0 in
  let asic = List.nth q.Core.Quality.q_components 1 in
  Alcotest.(check bool) "processor has code size" true
    (proc.Core.Quality.cq_software_bytes <> None);
  Alcotest.(check bool) "processor has no gates" true
    (proc.Core.Quality.cq_gates = None);
  Alcotest.(check bool) "asic has gates" true
    (asic.Core.Quality.cq_gates <> None);
  Alcotest.(check bool) "asic checked against capacity" true
    (asic.Core.Quality.cq_gates_ok <> None)

let test_positive_metrics () =
  List.iter
    (fun model ->
      let _, q = quality Workloads.Designs.design1 model in
      List.iter
        (fun c ->
          Alcotest.(check bool) "time > 0" true
            (c.Core.Quality.cq_exec_seconds > 0.0);
          Alcotest.(check bool) "pins > 0" true (c.Core.Quality.cq_pins > 0))
        q.Core.Quality.q_components)
    Core.Model.all

let test_memory_inventory () =
  let _, q1 = quality Workloads.Designs.design1 Core.Model.Model1 in
  let _, q2 = quality Workloads.Designs.design1 Core.Model.Model2 in
  let _, q3 = quality Workloads.Designs.design1 Core.Model.Model3 in
  let _, q4 = quality Workloads.Designs.design1 Core.Model.Model4 in
  let n q = List.length q.Core.Quality.q_memories in
  Alcotest.(check int) "m1: one memory" 1 (n q1);
  Alcotest.(check int) "m2: 2 local + 1 global" 3 (n q2);
  Alcotest.(check int) "m3: 2 local + 2 global" 4 (n q3);
  Alcotest.(check int) "m4: 2 local" 2 (n q4);
  (* Every variable is stored exactly once. *)
  List.iter
    (fun q ->
      let words =
        List.fold_left
          (fun acc m -> acc + m.Core.Quality.mq_words)
          0 q.Core.Quality.q_memories
      in
      Alcotest.(check int) "14 words total" 14 words)
    [ q1; q2; q3; q4 ]

let test_memory_ports () =
  let _, q3 = quality Workloads.Designs.design1 Core.Model.Model3 in
  List.iter
    (fun m ->
      if String.length m.Core.Quality.mq_name >= 4
         && String.sub m.Core.Quality.mq_name 0 4 = "Gmem"
      then
        Alcotest.(check bool)
          (m.Core.Quality.mq_name ^ " multiport")
          true
          (m.Core.Quality.mq_ports >= 1 && m.Core.Quality.mq_ports <= 2)
      else
        Alcotest.(check int) (m.Core.Quality.mq_name ^ " single") 1
          m.Core.Quality.mq_ports)
    q3.Core.Quality.q_memories

let test_pins_track_bus_structure () =
  (* Model3 gives partition 0 more buses than Model1 does; its pin demand
     must not be lower. *)
  let _, q1 = quality Workloads.Designs.design1 Core.Model.Model1 in
  let _, q3 = quality Workloads.Designs.design1 Core.Model.Model3 in
  let pins q i = (List.nth q.Core.Quality.q_components i).Core.Quality.cq_pins in
  Alcotest.(check bool) "m3 >= m1 pins on P0" true (pins q3 0 >= pins q1 0)

let test_exec_time_dominated_by_main_component () =
  let r, q = quality Workloads.Designs.design1 Core.Model.Model2 in
  let main = List.nth q.Core.Quality.q_components r.Core.Refiner.rf_top_home in
  Alcotest.(check bool) "main partition busy" true
    (main.Core.Quality.cq_exec_seconds > 0.0)

let test_asic_capacity_consistency () =
  List.iter
    (fun (d : Workloads.Designs.design) ->
      let _, q = quality d Core.Model.Model2 in
      List.iter
        (fun c ->
          match
            (c.Core.Quality.cq_gates, c.Core.Quality.cq_gates_ok,
             c.Core.Quality.cq_component.Arch.Component.c_kind)
          with
          | Some g, Some ok, Arch.Component.Asic a ->
            Alcotest.(check bool) "flag consistent" ok
              (g <= a.Arch.Component.asic_gates)
          | None, None, _ -> ()
          | _ -> Alcotest.fail "inconsistent quality record")
        q.Core.Quality.q_components)
    Workloads.Designs.all

let () =
  Alcotest.run "quality"
    [
      ( "components",
        [
          tc "kinds" test_component_kinds;
          tc "positive metrics" test_positive_metrics;
          tc "pins track buses" test_pins_track_bus_structure;
          tc "main component busy" test_exec_time_dominated_by_main_component;
          tc "capacity consistency" test_asic_capacity_consistency;
        ] );
      ( "memories",
        [ tc "inventory" test_memory_inventory; tc "ports" test_memory_ports ] );
    ]
