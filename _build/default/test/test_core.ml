(** Tests for the refinement core: implementation models, naming,
    addressing, bus planning, control/data refinement, the full refiner
    and its structural checks. *)

open Spec
open Spec.Ast
open Helpers

let fig1 = Workloads.Smallspecs.fig1
let fig2 = Workloads.Smallspecs.fig2
let g2 = Agraph.Access_graph.of_program fig2
let part2 = Workloads.Smallspecs.fig2_partition

(* --- Model ----------------------------------------------------------------- *)

let test_model_bus_bounds () =
  List.iter
    (fun p ->
      Alcotest.(check int) "m1" 1 (Core.Model.max_buses Core.Model.Model1 ~p);
      Alcotest.(check int) "m2" (p + 1) (Core.Model.max_buses Core.Model.Model2 ~p);
      Alcotest.(check int) "m3" (p + (p * p)) (Core.Model.max_buses Core.Model.Model3 ~p);
      Alcotest.(check int) "m4" ((2 * p) + 1) (Core.Model.max_buses Core.Model.Model4 ~p))
    [ 1; 2; 3; 5; 8 ]

let test_model_ports () =
  Alcotest.(check int) "m1 single" 1
    (Core.Model.global_memory_ports Core.Model.Model1 ~p:4);
  Alcotest.(check int) "m2 single" 1
    (Core.Model.global_memory_ports Core.Model.Model2 ~p:4);
  Alcotest.(check int) "m3 multi" 4
    (Core.Model.global_memory_ports Core.Model.Model3 ~p:4);
  Alcotest.(check int) "m4 none" 0
    (Core.Model.global_memory_ports Core.Model.Model4 ~p:4)

let test_model_of_string () =
  Alcotest.(check bool) "model3" true
    (Core.Model.of_string "Model3" = Some Core.Model.Model3);
  Alcotest.(check bool) "4" true (Core.Model.of_string "4" = Some Core.Model.Model4);
  Alcotest.(check bool) "bad" true (Core.Model.of_string "zzz" = None)

(* --- Naming ----------------------------------------------------------------- *)

let test_naming_fresh () =
  let n = Core.Naming.of_names [ "B"; "B_CTRL" ] in
  Alcotest.(check string) "avoid clash" "B_CTRL_2" (Core.Naming.ctrl n "B");
  Alcotest.(check string) "derived stays fresh" "B_CTRL_CTRL" (Core.Naming.ctrl n "B_CTRL");
  Alcotest.(check string) "new ok" "B_NEW" (Core.Naming.moved n "B")

let test_naming_of_program () =
  let n = Core.Naming.of_program Workloads.Medical.spec in
  Alcotest.(check bool) "behavior used" true (Core.Naming.is_used n "ACQUIRE");
  Alcotest.(check bool) "variable used" true (Core.Naming.is_used n "sample");
  Alcotest.(check bool) "fresh avoids" true
    (Core.Naming.fresh n "sample" <> "sample")

(* --- Address ----------------------------------------------------------------- *)

let test_address_assignment () =
  let a = Core.Address.build fig2 in
  Alcotest.(check int) "v1 at 0" 0 (Core.Address.address a "v1");
  Alcotest.(check int) "v7 at 6" 6 (Core.Address.address a "v7");
  Alcotest.(check int) "7 vars need 3 bits" 3 a.Core.Address.addr_width;
  Alcotest.(check int) "16-bit data" 16 a.Core.Address.data_width

let test_address_widths () =
  let prog n =
    Program.make
      ~vars:(List.init n (fun i -> Builder.int_var (Printf.sprintf "w%d" i)))
      "p" (Behavior.leaf "l" [])
  in
  let width n = (Core.Address.build (prog n)).Core.Address.addr_width in
  Alcotest.(check int) "1 var" 1 (width 1);
  Alcotest.(check int) "2 vars" 1 (width 2);
  Alcotest.(check int) "3 vars" 2 (width 3);
  Alcotest.(check int) "16 vars" 4 (width 16);
  Alcotest.(check int) "17 vars" 5 (width 17)

let test_address_unknown () =
  let a = Core.Address.build fig2 in
  Alcotest.check_raises "unknown"
    (Invalid_argument "Address.address: unknown variable zz") (fun () ->
      ignore (Core.Address.address a "zz"))

(* --- Bus_plan ----------------------------------------------------------------- *)

let mem_of plan v = Core.Bus_plan.memory_of plan v

let test_plan_model1_memory () =
  let plan = Core.Bus_plan.build Core.Model.Model1 g2 part2 in
  List.iter
    (fun v -> Alcotest.(check bool) v true (mem_of plan v = Core.Bus_plan.Gmem))
    g2.Agraph.Access_graph.g_variables;
  Alcotest.(check int) "one bus" 1 (List.length plan.Core.Bus_plan.bp_buses)

let test_plan_model2_memory () =
  let plan = Core.Bus_plan.build Core.Model.Model2 g2 part2 in
  Alcotest.(check bool) "v1 local" true (mem_of plan "v1" = Core.Bus_plan.Lmem 0);
  Alcotest.(check bool) "v6 local" true (mem_of plan "v6" = Core.Bus_plan.Lmem 1);
  Alcotest.(check bool) "v4 global" true (mem_of plan "v4" = Core.Bus_plan.Gmem);
  Alcotest.(check bool) "v5 global" true (mem_of plan "v5" = Core.Bus_plan.Gmem)

let test_plan_model3_memory () =
  let plan = Core.Bus_plan.build Core.Model.Model3 g2 part2 in
  Alcotest.(check bool) "v4 homed 0" true
    (mem_of plan "v4" = Core.Bus_plan.Gmem_part 0);
  Alcotest.(check bool) "v5 homed 1" true
    (mem_of plan "v5" = Core.Bus_plan.Gmem_part 1);
  Alcotest.(check bool) "v6 local" true (mem_of plan "v6" = Core.Bus_plan.Lmem 1)

let test_plan_model4_memory () =
  let plan = Core.Bus_plan.build Core.Model.Model4 g2 part2 in
  List.iter
    (fun (v, home) ->
      Alcotest.(check bool) v true (mem_of plan v = Core.Bus_plan.Lmem home))
    [ ("v1", 0); ("v4", 0); ("v5", 1); ("v6", 1); ("v7", 1) ]

let test_plan_bus_layout_orders () =
  let roles model =
    List.map
      (fun (b : Core.Bus_plan.bus) -> b.Core.Bus_plan.bus_role)
      (Core.Bus_plan.build model g2 part2).Core.Bus_plan.bp_buses
  in
  Alcotest.(check bool) "m2 layout" true
    (roles Core.Model.Model2
    = [ Core.Bus_plan.Local 0; Core.Bus_plan.Shared_global; Core.Bus_plan.Local 1 ]);
  Alcotest.(check bool) "m3 layout" true
    (roles Core.Model.Model3
    = [
        Core.Bus_plan.Local 0;
        Core.Bus_plan.Dedicated { master = 0; mem = 0 };
        Core.Bus_plan.Dedicated { master = 0; mem = 1 };
        Core.Bus_plan.Dedicated { master = 1; mem = 1 };
        Core.Bus_plan.Dedicated { master = 1; mem = 0 };
        Core.Bus_plan.Local 1;
      ]);
  Alcotest.(check bool) "m4 layout" true
    (roles Core.Model.Model4
    = [
        Core.Bus_plan.Local 0;
        Core.Bus_plan.Chain_request 0;
        Core.Bus_plan.Chain_request 1;
        Core.Bus_plan.Chain_inter;
        Core.Bus_plan.Local 1;
      ])

let test_plan_model1_carries_everything () =
  let plan = Core.Bus_plan.build Core.Model.Model1 g2 part2 in
  let bus = List.hd plan.Core.Bus_plan.bp_buses in
  Alcotest.(check int) "all channels"
    (Agraph.Access_graph.channel_count g2)
    (List.length bus.Core.Bus_plan.bus_edges)

let test_plan_model4_chain_edges () =
  (* Cross-partition edges appear on the requester chain, the inter bus
     and the home chain. *)
  let plan = Core.Bus_plan.build Core.Model.Model4 g2 part2 in
  let edges role =
    match
      List.find_opt
        (fun (b : Core.Bus_plan.bus) ->
          Core.Bus_plan.equal_role b.Core.Bus_plan.bus_role role)
        plan.Core.Bus_plan.bp_buses
    with
    | Some b -> b.Core.Bus_plan.bus_edges
    | None -> []
  in
  let cross (e : Agraph.Access_graph.data_edge) =
    let bp =
      Option.get
        (Partitioning.Partition.part_of_behavior part2 e.Agraph.Access_graph.de_behavior)
    in
    match mem_of plan e.Agraph.Access_graph.de_variable with
    | Core.Bus_plan.Lmem h -> bp <> h
    | _ -> false
  in
  let n_cross = List.length (List.filter cross g2.Agraph.Access_graph.g_data) in
  Alcotest.(check int) "inter carries all cross" n_cross
    (List.length (edges Core.Bus_plan.Chain_inter));
  Alcotest.(check bool) "inter > 0" true (n_cross > 0)

let test_plan_bus_of_access () =
  let plan = Core.Bus_plan.build Core.Model.Model4 g2 part2 in
  Alcotest.(check bool) "local access" true
    (Core.Bus_plan.bus_of_access plan ~master:0 ~variable:"v1"
    = Core.Bus_plan.Local 0);
  Alcotest.(check bool) "remote access" true
    (Core.Bus_plan.bus_of_access plan ~master:0 ~variable:"v5"
    = Core.Bus_plan.Chain_request 0)

let test_plan_incomplete_partition_rejected () =
  let empty = Partitioning.Partition.make ~n_parts:2 [] in
  match Core.Bus_plan.build Core.Model.Model1 g2 empty with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "expected Invalid_argument"

(* --- Control_refine ----------------------------------------------------------- *)

let run_control ?force_nonleaf p part =
  let g = Agraph.Access_graph.of_program p in
  let naming = Core.Naming.of_program p in
  Core.Control_refine.run ~naming ?force_nonleaf
    ~is_object:(fun n -> List.mem n g.Agraph.Access_graph.g_objects)
    ~home_of_object:(fun n ->
      Option.get (Partitioning.Partition.part_of_behavior part n))
    p.p_top

let test_control_home_and_moved () =
  let r = run_control fig1 Workloads.Smallspecs.fig1_partition in
  Alcotest.(check int) "top home = 0" 0 r.Core.Control_refine.cr_top_home;
  Alcotest.(check (list string)) "B moved" [ "B" ]
    (List.map
       (fun m -> m.Core.Control_refine.mv_original_name)
       r.Core.Control_refine.cr_moved);
  let m = List.hd r.Core.Control_refine.cr_moved in
  Alcotest.(check int) "to partition 1" 1 m.Core.Control_refine.mv_partition;
  Alcotest.(check string) "wrapper name" "B_NEW"
    m.Core.Control_refine.mv_behavior.b_name

let test_control_ctrl_in_place () =
  let r = run_control fig1 Workloads.Smallspecs.fig1_partition in
  (* The main tree must contain B_CTRL where B used to be, and the TOC
     arcs must be retargeted. *)
  Alcotest.(check bool) "B_CTRL present" true
    (Behavior.find "B_CTRL" r.Core.Control_refine.cr_main <> None);
  Alcotest.(check bool) "B gone from main" true
    (Behavior.find "B" r.Core.Control_refine.cr_main = None);
  match r.Core.Control_refine.cr_main.b_body with
  | Seq (a :: _) ->
    let targets =
      List.filter_map
        (fun t ->
          match t.t_target with Goto g -> Some g | Complete -> None)
        a.a_transitions
    in
    Alcotest.(check (list string)) "retargeted" [ "B_CTRL"; "C" ] targets
  | _ -> Alcotest.fail "expected seq"

let test_control_signals () =
  let r = run_control fig1 Workloads.Smallspecs.fig1_partition in
  Alcotest.(check (list string)) "start/done" [ "B_start"; "B_done" ]
    (List.map (fun s -> s.s_name) r.Core.Control_refine.cr_signals)

let test_control_leaf_scheme_shape () =
  let r = run_control fig1 Workloads.Smallspecs.fig1_partition in
  let m = List.hd r.Core.Control_refine.cr_moved in
  (* Figure 4b: a single leaf with one perpetual while loop. *)
  match m.Core.Control_refine.mv_behavior.b_body with
  | Leaf [ While (_, body) ] ->
    Alcotest.(check bool) "waits for start" true
      (match body with Wait_until _ :: _ -> true | _ -> false)
  | _ -> Alcotest.fail "expected leaf wrapper with one loop"

let test_control_nonleaf_scheme_shape () =
  let r =
    run_control ~force_nonleaf:true fig1 Workloads.Smallspecs.fig1_partition
  in
  let m = List.hd r.Core.Control_refine.cr_moved in
  (* Figure 4c: a sequential wrapper with wait, body, done arms and a
     loop-back transition. *)
  match m.Core.Control_refine.mv_behavior.b_body with
  | Seq [ wait_arm; body_arm; done_arm ] ->
    Alcotest.(check string) "original inside" "B"
      body_arm.a_behavior.b_name;
    Alcotest.(check bool) "loop back" true
      (List.exists
         (fun t -> t.t_target = Goto wait_arm.a_behavior.b_name)
         done_arm.a_transitions)
  | _ -> Alcotest.fail "expected 3-arm seq wrapper"

let test_control_nothing_moves_when_together () =
  let part =
    Partitioning.Partition.make ~n_parts:2
      [
        (Partitioning.Partition.Obj_behavior "A", 0);
        (Partitioning.Partition.Obj_behavior "B", 0);
        (Partitioning.Partition.Obj_behavior "C", 0);
        (Partitioning.Partition.Obj_variable "x", 1);
      ]
  in
  let r = run_control fig1 part in
  Alcotest.(check int) "nothing moved" 0
    (List.length r.Core.Control_refine.cr_moved);
  Alcotest.(check bool) "tree unchanged" true
    (Ast.equal_behavior r.Core.Control_refine.cr_main fig1.p_top)

let test_control_multiple_moves () =
  let r = run_control fig2 part2 in
  Alcotest.(check (list string)) "B3 B4 moved" [ "B3"; "B4" ]
    (List.map
       (fun m -> m.Core.Control_refine.mv_original_name)
       r.Core.Control_refine.cr_moved)

(* --- Data_refine ----------------------------------------------------------- *)

let dummy_bus naming =
  Core.Protocol.make_bus_signals naming ~label:"tb" ~addr_width:4 ~data_width:16

let make_ctx ?(arbiter = false) () =
  let naming = Core.Naming.of_names [] in
  let bus = dummy_bus naming in
  let arb =
    if arbiter then Some (Core.Arbiter.make naming ~bus_label:"tb" ~n:2)
    else None
  in
  let requester = Option.map (fun a -> Core.Arbiter.requester a 0) arb in
  ( bus,
    {
      Core.Data_refine.dr_naming = naming;
      dr_is_program_var = (fun x -> String.length x = 1);
      dr_ty_of = (fun _ -> TInt 16);
      dr_addr_of = (fun v -> Char.code v.[0] - Char.code 'a');
      dr_bus_of = (fun _ -> bus);
      dr_arb_of = (fun ~region:_ _ -> requester);
    } )

let refine_leaf ctx stmts =
  let b = Core.Data_refine.refine_behavior ctx ~root_region:"L" (Behavior.leaf "L" stmts) in
  match b.b_body with
  | Leaf stmts -> (b, stmts)
  | _ -> Alcotest.fail "leaf expected"

let test_data_read_becomes_receive () =
  let bus, ctx = make_ctx () in
  let b, stmts =
    refine_leaf ctx (Parser.stmts_of_string_exn "y := a + 1;")
  in
  (* y is not a program var (length 1? 'y' is length 1!) *)
  ignore b;
  ignore bus;
  ignore stmts

let test_data_read_load_and_rename () =
  let bus, ctx = make_ctx () in
  let _, stmts = refine_leaf ctx (Parser.stmts_of_string_exn "zz := a + 1;") in
  (* a is remote: expect a receive call into tmp_a, then the assignment
     using tmp_a. *)
  begin match stmts with
  | [ Call (recv, [ Arg_expr (Const (VInt 0)); Arg_var tmp ]);
      Assign ("zz", Binop (Add, Ref tmp', Const (VInt 1))) ] ->
    Alcotest.(check string) "recv proc" (Core.Protocol.mst_receive_name bus) recv;
    Alcotest.(check string) "same tmp" tmp tmp'
  | _ ->
    Alcotest.failf "unexpected shape:\n%s" (Printer.stmts_to_string stmts)
  end

let test_data_write_becomes_send () =
  let bus, ctx = make_ctx () in
  let _, stmts = refine_leaf ctx (Parser.stmts_of_string_exn "b := 7;") in
  (* The value is staged in the tmp (where booleans would be encoded) and
     then sent. *)
  match stmts with
  | [ Assign (tmp, Const (VInt 7));
      Call (send, [ Arg_expr (Const (VInt 1)); Arg_expr (Ref tmp') ]) ] ->
    Alcotest.(check string) "send proc" (Core.Protocol.mst_send_name bus) send;
    Alcotest.(check string) "staged tmp" tmp tmp'
  | _ -> Alcotest.failf "unexpected:\n%s" (Printer.stmts_to_string stmts)

let test_data_rmw () =
  let _, ctx = make_ctx () in
  let _, stmts = refine_leaf ctx (Parser.stmts_of_string_exn "a := a + 5;") in
  (* Figure 5c: receive into tmp, stage tmp + 5 back into the tmp, send. *)
  match stmts with
  | [ Call (_, [ _; Arg_var tmp ]);
      Assign (tmp2, Binop (Add, Ref tmp', Const (VInt 5)));
      Call (_, [ _; Arg_expr (Ref tmp3) ]) ] ->
    Alcotest.(check string) "tmp flows" tmp tmp';
    Alcotest.(check string) "staged" tmp2 tmp3
  | _ -> Alcotest.failf "unexpected:\n%s" (Printer.stmts_to_string stmts)

let test_data_while_reloads () =
  let _, ctx = make_ctx () in
  let _, stmts =
    refine_leaf ctx (Parser.stmts_of_string_exn "while a > 0 do zz := 1; end while;")
  in
  match stmts with
  | [ Call _; While (Binop (Gt, Ref _, _), body) ] ->
    (* The body must reload a at its end. *)
    begin match List.rev body with
    | Call (recv, _) :: _ ->
      Alcotest.(check bool) "reload at end" true
        (String.length recv > 0)
    | _ -> Alcotest.fail "no reload at end of body"
    end
  | _ -> Alcotest.failf "unexpected:\n%s" (Printer.stmts_to_string stmts)

let test_data_arbitration_brackets () =
  let _, ctx = make_ctx ~arbiter:true () in
  let _, stmts = refine_leaf ctx (Parser.stmts_of_string_exn "zz := a;") in
  (* acquire (req + wait) / receive / release (req + wait) / assign *)
  match stmts with
  | [ Signal_assign _; Wait_until _; Call _; Signal_assign _; Wait_until _;
      Assign _ ] -> ()
  | _ -> Alcotest.failf "unexpected:\n%s" (Printer.stmts_to_string stmts)

let test_data_shadowed_untouched () =
  let _, ctx = make_ctx () in
  let b =
    Core.Data_refine.refine_behavior ctx ~root_region:"L"
      (Behavior.leaf ~vars:[ Builder.int_var "a" ] "L"
         (Parser.stmts_of_string_exn "a := a + 1;"))
  in
  match b.b_body with
  | Leaf [ Assign ("a", _) ] -> ()
  | _ -> Alcotest.fail "shadowed access must stay direct"

let test_data_for_index_rejected () =
  let _, ctx = make_ctx () in
  Alcotest.check_raises "for index"
    (Core.Data_refine.Refine_error
       "for-loop index a is a partitioned variable") (fun () ->
      ignore
        (Core.Data_refine.refine_behavior ctx ~root_region:"L"
           (Behavior.leaf "L"
              (Parser.stmts_of_string_exn
                 "for a := 0 to 3 do zz := 1; end for;"))))

let test_data_out_arg_rejected () =
  let _, ctx = make_ctx () in
  match
    Core.Data_refine.refine_behavior ctx ~root_region:"L"
      (Behavior.leaf "L" [ Call ("p", [ Arg_var "a" ]) ])
  with
  | exception Core.Data_refine.Refine_error _ -> ()
  | _ -> Alcotest.fail "expected Refine_error"

let test_data_toc_loader () =
  let _, ctx = make_ctx () in
  let seq =
    Behavior.seq "S"
      [
        Behavior.arm (Behavior.leaf "X" [ Skip ])
          ~transitions:[ Builder.goto ~cond:Expr.(ref_ "a" > int 1) "Y" ];
        Behavior.arm (Behavior.leaf "Y" []);
      ]
  in
  let refined = Core.Data_refine.refine_behavior ctx ~root_region:"S" seq in
  (* The composite declares the tmp; the arm's leaf ends with the load;
     the condition references the tmp. *)
  Alcotest.(check int) "tmp declared" 1 (List.length refined.b_vars);
  let tmp = (List.hd refined.b_vars).v_name in
  match refined.b_body with
  | Seq (x :: _) ->
    begin match x.a_behavior.b_body with
    | Leaf stmts ->
      begin match List.rev stmts with
      | Call (_, [ _; Arg_var t ]) :: _ ->
        Alcotest.(check string) "loads tmp" tmp t
      | _ -> Alcotest.fail "no load at arm end"
      end
    | _ -> Alcotest.fail "leaf expected"
    end;
    begin match x.a_transitions with
    | [ { t_cond = Some (Binop (Gt, Ref t, _)); _ } ] ->
      Alcotest.(check string) "cond uses tmp" tmp t
    | _ -> Alcotest.fail "condition not rewritten"
    end
  | _ -> Alcotest.fail "seq expected"

let test_data_toc_composite_child_wrapped () =
  let _, ctx = make_ctx () in
  let inner =
    Behavior.seq "INNER" [ Behavior.arm (Behavior.leaf "Z" [ Skip ]) ]
  in
  let seq =
    Behavior.seq "S"
      [
        Behavior.arm inner
          ~transitions:[ Builder.goto ~cond:Expr.(ref_ "a" > int 1) "Y" ];
        Behavior.arm (Behavior.leaf "Y" []);
      ]
  in
  let refined = Core.Data_refine.refine_behavior ctx ~root_region:"S" seq in
  match refined.b_body with
  | Seq (x :: _) ->
    (* The composite child is wrapped in a (child; loader) sequence. *)
    Alcotest.(check string) "wrapper" "INNER_toc" x.a_behavior.b_name;
    begin match x.a_behavior.b_body with
    | Seq [ child; loader ] ->
      Alcotest.(check string) "child kept" "INNER" child.a_behavior.b_name;
      Alcotest.(check string) "loader" "INNER_toc_load"
        loader.a_behavior.b_name
    | _ -> Alcotest.fail "wrapper shape"
    end
  | _ -> Alcotest.fail "seq expected"

let test_data_wait_until_polls () =
  let _, ctx = make_ctx () in
  let _, stmts =
    refine_leaf ctx [ Wait_until Expr.(ref_ "a" = int 3) ]
  in
  match stmts with
  | [ Call _; While (Unop (Not, _), body) ] ->
    Alcotest.(check bool) "poll reloads" true
      (List.exists (function Call _ -> true | _ -> false) body)
  | _ -> Alcotest.failf "unexpected:\n%s" (Printer.stmts_to_string stmts)

(* --- Refiner (structure) ----------------------------------------------------- *)

let test_refiner_bus_bound_respected () =
  List.iter
    (fun model ->
      let r = refine fig2 part2 model in
      Alcotest.(check bool)
        (Core.Model.name model)
        true
        (List.length r.Core.Refiner.rf_buses
        <= Core.Model.max_buses model ~p:2))
    Core.Model.all

let test_refiner_model1_arbitrated () =
  let r = refine fig2 part2 Core.Model.Model1 in
  match r.Core.Refiner.rf_buses with
  | [ b ] ->
    Alcotest.(check bool) "arbiter present" true
      (b.Core.Refiner.bi_arbiter <> None);
    Alcotest.(check int) "three masters" 3
      (List.length b.Core.Refiner.bi_requesters)
  | _ -> Alcotest.fail "expected one bus"

let test_refiner_model3_gmem_ports () =
  let r = refine fig2 part2 Core.Model.Model3 in
  let prog = r.Core.Refiner.rf_program in
  (* Gmem1 (v5, v7) is accessed by both partitions: two ports = a par of
     two serving leaves. *)
  match Program.lookup_behavior prog "GMEM_1" with
  | Some b ->
    begin match b.b_body with
    | Par ports -> Alcotest.(check int) "two ports" 2 (List.length ports)
    | Leaf _ -> Alcotest.fail "expected multi-port memory"
    | Seq _ -> Alcotest.fail "unexpected seq"
    end
  | None -> Alcotest.fail "GMEM_1 missing"

let test_refiner_servers_registered () =
  List.iter
    (fun model ->
      let r = refine fig2 part2 model in
      let prog = r.Core.Refiner.rf_program in
      List.iter
        (fun name ->
          Alcotest.(check bool) name true (Program.is_server prog name))
        (r.Core.Refiner.rf_memories @ r.Core.Refiner.rf_arbiters
        @ r.Core.Refiner.rf_moved))
    Core.Model.all

let test_refiner_refined_validates () =
  List.iter
    (fun model ->
      let r = refine fig2 part2 model in
      match Program.validate r.Core.Refiner.rf_program with
      | Ok () -> ()
      | Error msgs -> Alcotest.failf "invalid: %s" (String.concat "; " msgs))
    Core.Model.all

let test_refiner_no_top_vars () =
  List.iter
    (fun model ->
      let r = refine fig2 part2 model in
      Alcotest.(check int) "no top-level vars" 0
        (List.length r.Core.Refiner.rf_program.p_vars))
    Core.Model.all

let test_refiner_initial_values_preserved () =
  (* fig2's v1 starts at 1 and v3 at 2: those initializers must move into
     the memory behaviors. *)
  let r = refine fig2 part2 Core.Model.Model1 in
  let prog = r.Core.Refiner.rf_program in
  let gmem = Option.get (Program.lookup_behavior prog "GMEM") in
  let init name =
    let d = List.find (fun v -> v.v_name = name) gmem.b_vars in
    d.v_init
  in
  Alcotest.(check bool) "v1=1" true (init "v1" = Some (VInt 1));
  Alcotest.(check bool) "v3=2" true (init "v3" = Some (VInt 2))

let test_refiner_proc_access_rejected () =
  let bad =
    Program.make
      ~vars:[ Builder.int_var "v" ]
      ~procs:[ Builder.proc "touch" [ Assign ("v", Expr.int 1) ] ]
      "bad"
      (Behavior.seq "T"
         [
           Behavior.arm (Behavior.leaf "L1" [ Call ("touch", []) ]);
           Behavior.arm (Behavior.leaf "L2" [ Assign ("v", Expr.int 2) ]);
         ])
  in
  let g = Agraph.Access_graph.of_program bad in
  let part =
    Partitioning.Partition.make ~n_parts:2
      [
        (Partitioning.Partition.Obj_behavior "L1", 0);
        (Partitioning.Partition.Obj_behavior "L2", 1);
        (Partitioning.Partition.Obj_variable "v", 0);
      ]
  in
  match Core.Refiner.refine bad g part Core.Model.Model1 with
  | exception Core.Refiner.Refine_error msg ->
    Alcotest.(check bool) "mentions proc" true
      (String.length msg > 0)
  | _ -> Alcotest.fail "expected Refine_error"

let test_refiner_single_partition_no_control_signals () =
  (* Everything on one component: no B_CTRL/B_NEW, only data refinement. *)
  let part =
    Partitioning.Partition.of_graph
      (Agraph.Access_graph.of_program fig1)
      ~n_parts:1 (fun _ -> 0)
  in
  let r = refine fig1 part Core.Model.Model1 in
  Alcotest.(check int) "nothing moved" 0 (List.length r.Core.Refiner.rf_moved)

(* --- rate identities (property) ----------------------------------------------- *)

(* The seven structural identities that relate the four models' bus rates
   (the paper's Figure 9 obeys them up to rounding) hold for ANY complete
   two-way partition, not just the three designs. *)
let prop_rate_identities =
  QCheck.Test.make ~count:40 ~name:"figure 9 rate identities on random partitions"
    QCheck.(make ~print:string_of_int Gen.(int_range 1 100_000))
    (fun seed ->
      let graph = Workloads.Medical.graph in
      let part =
        Workloads.Generator.random_partition ~seed graph ~n_parts:2
      in
      let env =
        Estimate.Rates.make_env Workloads.Medical.spec
          Workloads.Designs.allocation part
      in
      let rate model role =
        let plan = Core.Bus_plan.build model graph part in
        match
          List.find_opt
            (fun (b : Core.Bus_plan.bus) ->
              Core.Bus_plan.equal_role b.Core.Bus_plan.bus_role role)
            plan.Core.Bus_plan.bp_buses
        with
        | Some b -> Estimate.Rates.bus_rate_mbps env b.Core.Bus_plan.bus_edges
        | None -> 0.0
      in
      let close a b = Float.abs (a -. b) < 1e-6 *. (1.0 +. Float.abs a) in
      let m1 = rate Core.Model.Model1 Core.Bus_plan.Shared_global in
      let m2l0 = rate Core.Model.Model2 (Core.Bus_plan.Local 0) in
      let m2g = rate Core.Model.Model2 Core.Bus_plan.Shared_global in
      let m2l1 = rate Core.Model.Model2 (Core.Bus_plan.Local 1) in
      let d m g = rate Core.Model.Model3 (Core.Bus_plan.Dedicated { master = m; mem = g }) in
      let m3l0 = rate Core.Model.Model3 (Core.Bus_plan.Local 0) in
      let m3l1 = rate Core.Model.Model3 (Core.Bus_plan.Local 1) in
      let m4l0 = rate Core.Model.Model4 (Core.Bus_plan.Local 0) in
      let m4l1 = rate Core.Model.Model4 (Core.Bus_plan.Local 1) in
      let chain = rate Core.Model.Model4 Core.Bus_plan.Chain_inter in
      close m1 (m2l0 +. m2g +. m2l1)
      && close m2g (d 0 0 +. d 0 1 +. d 1 0 +. d 1 1)
      && close m2l0 m3l0 && close m2l1 m3l1
      && close m4l0 (m3l0 +. d 0 0)
      && close m4l1 (m3l1 +. d 1 1)
      && close chain (d 0 1 +. d 1 0))

(* --- Check (failure injection) ----------------------------------------------- *)

let test_check_detects_missing_arbiter () =
  let r = refine fig2 part2 Core.Model.Model1 in
  let broken =
    {
      r with
      Core.Refiner.rf_buses =
        List.map
          (fun b -> { b with Core.Refiner.bi_arbiter = None })
          r.Core.Refiner.rf_buses;
    }
  in
  match Core.Check.run ~original:fig2 broken with
  | Ok () -> Alcotest.fail "expected violation"
  | Error msgs ->
    Alcotest.(check bool) "mentions arbiter" true
      (List.exists
         (fun m ->
           let rec has i =
             i + 7 <= String.length m
             && (String.sub m i 7 = "arbiter" || has (i + 1))
           in
           has 0)
         msgs)

let test_check_detects_leftover_vars () =
  let r = refine fig2 part2 Core.Model.Model2 in
  let broken_prog =
    { r.Core.Refiner.rf_program with p_vars = [ Builder.int_var "leftover" ] }
  in
  let broken = { r with Core.Refiner.rf_program = broken_prog } in
  match Core.Check.run ~original:fig2 broken with
  | Ok () -> Alcotest.fail "expected violation"
  | Error _ -> ()

let test_check_detects_unregistered_server () =
  let r = refine fig2 part2 Core.Model.Model2 in
  let prog = r.Core.Refiner.rf_program in
  let broken_prog = { prog with p_servers = [] } in
  let broken = { r with Core.Refiner.rf_program = broken_prog } in
  match Core.Check.run ~original:fig2 broken with
  | Ok () -> Alcotest.fail "expected violation"
  | Error _ -> ()

let test_check_passes_all_models () =
  List.iter
    (fun model ->
      let r = refine fig2 part2 model in
      match Core.Check.run ~original:fig2 r with
      | Ok () -> ()
      | Error msgs -> Alcotest.failf "%s: %s" (Core.Model.name model)
                        (String.concat "; " msgs))
    Core.Model.all

(* --- Metrics ----------------------------------------------------------------- *)

let test_metrics_of_program () =
  let m = Core.Metrics.of_program Workloads.Medical.spec in
  Alcotest.(check int) "lines" (Printer.line_count Workloads.Medical.spec)
    m.Core.Metrics.m_lines;
  Alcotest.(check int) "behaviors" 21 m.Core.Metrics.m_behaviors;
  Alcotest.(check int) "variables" 14 m.Core.Metrics.m_variables

let test_metrics_growth () =
  let r = refine fig2 part2 Core.Model.Model4 in
  let growth =
    Core.Metrics.growth ~original:fig2 ~refined:r.Core.Refiner.rf_program
  in
  Alcotest.(check bool) "substantial growth" true (growth > 3.0)

let () =
  Alcotest.run "core"
    [
      ( "model",
        [
          tc "bus bounds" test_model_bus_bounds;
          tc "memory ports" test_model_ports;
          tc "of_string" test_model_of_string;
        ] );
      ( "naming",
        [ tc "fresh" test_naming_fresh; tc "of_program" test_naming_of_program ] );
      ( "address",
        [
          tc "assignment" test_address_assignment;
          tc "widths" test_address_widths;
          tc "unknown" test_address_unknown;
        ] );
      ( "bus plan",
        [
          tc "model1 memory map" test_plan_model1_memory;
          tc "model2 memory map" test_plan_model2_memory;
          tc "model3 memory map" test_plan_model3_memory;
          tc "model4 memory map" test_plan_model4_memory;
          tc "bus layouts" test_plan_bus_layout_orders;
          tc "model1 carries all" test_plan_model1_carries_everything;
          tc "model4 chain edges" test_plan_model4_chain_edges;
          tc "bus_of_access" test_plan_bus_of_access;
          tc "incomplete rejected" test_plan_incomplete_partition_rejected;
        ] );
      ( "control refinement",
        [
          tc "home and moved" test_control_home_and_moved;
          tc "ctrl in place" test_control_ctrl_in_place;
          tc "signals" test_control_signals;
          tc "leaf scheme (4b)" test_control_leaf_scheme_shape;
          tc "non-leaf scheme (4c)" test_control_nonleaf_scheme_shape;
          tc "no move when together" test_control_nothing_moves_when_together;
          tc "multiple moves" test_control_multiple_moves;
        ] );
      ( "data refinement",
        [
          tc "local untouched" test_data_read_becomes_receive;
          tc "read -> receive" test_data_read_load_and_rename;
          tc "write -> send" test_data_write_becomes_send;
          tc "read-modify-write" test_data_rmw;
          tc "while reloads" test_data_while_reloads;
          tc "arbitration brackets" test_data_arbitration_brackets;
          tc "shadowing respected" test_data_shadowed_untouched;
          tc "for index rejected" test_data_for_index_rejected;
          tc "out arg rejected" test_data_out_arg_rejected;
          tc "TOC loader (fig 6)" test_data_toc_loader;
          tc "TOC wrapper for composite" test_data_toc_composite_child_wrapped;
          tc "wait polls" test_data_wait_until_polls;
        ] );
      ( "refiner",
        [
          tc "bus bound" test_refiner_bus_bound_respected;
          tc "model1 arbitrated" test_refiner_model1_arbitrated;
          tc "model3 gmem ports" test_refiner_model3_gmem_ports;
          tc "servers registered" test_refiner_servers_registered;
          tc "refined validates" test_refiner_refined_validates;
          tc "no top vars" test_refiner_no_top_vars;
          tc "inits preserved" test_refiner_initial_values_preserved;
          tc "proc access rejected" test_refiner_proc_access_rejected;
          tc "single partition" test_refiner_single_partition_no_control_signals;
        ] );
      ( "rate identities",
        [ QCheck_alcotest.to_alcotest prop_rate_identities ] );
      ( "check",
        [
          tc "missing arbiter" test_check_detects_missing_arbiter;
          tc "leftover vars" test_check_detects_leftover_vars;
          tc "unregistered server" test_check_detects_unregistered_server;
          tc "all models pass" test_check_passes_all_models;
        ] );
      ( "metrics",
        [ tc "of_program" test_metrics_of_program; tc "growth" test_metrics_growth ] );
    ]
