(** End-to-end functional-equivalence tests: every workload refined under
    every implementation model must co-simulate equivalent to its
    original — the correctness requirement of the refinement task. *)

open Helpers

let models = Core.Model.all

let check_all name p part =
  List.iter
    (fun model ->
      ignore (refine_and_verify p part model);
      ignore name)
    models

let test_fig1 () =
  check_all "fig1" Workloads.Smallspecs.fig1 Workloads.Smallspecs.fig1_partition

let test_fig2 () =
  check_all "fig2" Workloads.Smallspecs.fig2 Workloads.Smallspecs.fig2_partition

let test_ping_pong () =
  check_all "pingpong" Workloads.Smallspecs.ping_pong
    Workloads.Smallspecs.ping_pong_partition

let test_medical_design1 () =
  check_all "design1" Workloads.Medical.spec
    Workloads.Designs.design1.Workloads.Designs.d_partition

let test_medical_design2 () =
  check_all "design2" Workloads.Medical.spec
    Workloads.Designs.design2.Workloads.Designs.d_partition

let test_medical_design3 () =
  check_all "design3" Workloads.Medical.spec
    Workloads.Designs.design3.Workloads.Designs.d_partition

let test_forced_nonleaf_scheme () =
  (* The paper's Figure 4c alternative must be just as correct. *)
  List.iter
    (fun model ->
      ignore
        (refine_and_verify
           ~options:{ Core.Refiner.default_options with force_nonleaf = true }
           Workloads.Smallspecs.fig1 Workloads.Smallspecs.fig1_partition model))
    models

let test_fir_all_models_and_protocols () =
  (* Arrays map to memory address ranges; verify the indexed protocol
     path under every model and both handshake styles. *)
  List.iter
    (fun protocol ->
      List.iter
        (fun model ->
          ignore
            (refine_and_verify
               ~options:{ Core.Refiner.default_options with protocol }
               Workloads.Fir.spec Workloads.Fir.partition model))
        models)
    [ Core.Protocol.Four_phase; Core.Protocol.Two_phase ]

let test_elevator_all_models () =
  check_all "elevator" Workloads.Elevator.spec Workloads.Elevator.partition

let test_elevator_two_phase () =
  List.iter
    (fun model ->
      ignore
        (refine_and_verify
           ~options:
             { Core.Refiner.default_options with
               protocol = Core.Protocol.Two_phase }
           Workloads.Elevator.spec Workloads.Elevator.partition model))
    models

let test_two_phase_protocol () =
  (* The transition-signalled protocol must be just as correct... *)
  List.iter
    (fun model ->
      List.iter
        (fun (p, part) ->
          ignore
            (refine_and_verify
               ~options:
                 { Core.Refiner.default_options with
                   protocol = Core.Protocol.Two_phase }
               p part model))
        [
          (Workloads.Smallspecs.fig1, Workloads.Smallspecs.fig1_partition);
          (Workloads.Smallspecs.fig2, Workloads.Smallspecs.fig2_partition);
          ( Workloads.Medical.spec,
            Workloads.Designs.design1.Workloads.Designs.d_partition );
        ])
    models

let test_two_phase_is_faster () =
  (* ... and cheaper: it needs fewer delta cycles than four-phase. *)
  let deltas protocol =
    let options = { Core.Refiner.default_options with protocol } in
    let r =
      refine ~options Workloads.Medical.spec
        Workloads.Designs.design1.Workloads.Designs.d_partition
        Core.Model.Model2
    in
    (run_ok r.Core.Refiner.rf_program).Sim.Engine.r_deltas
  in
  Alcotest.(check bool) "two-phase faster" true
    (deltas Core.Protocol.Two_phase < deltas Core.Protocol.Four_phase)

let test_three_partitions () =
  (* Partition fig2 across three components. *)
  let g = Agraph.Access_graph.of_program Workloads.Smallspecs.fig2 in
  let part =
    Partitioning.Partition.of_graph g ~n_parts:3 (fun o ->
        match o with
        | Partitioning.Partition.Obj_behavior "B1" -> 0
        | Partitioning.Partition.Obj_behavior "B2" -> 1
        | Partitioning.Partition.Obj_behavior _ -> 2
        | Partitioning.Partition.Obj_variable v ->
          (match v with
          | "v1" | "v2" | "v3" -> 0
          | "v4" -> 1
          | _ -> 2))
  in
  List.iter
    (fun model ->
      ignore (refine_and_verify Workloads.Smallspecs.fig2 part model))
    models

let test_refined_traces_match_original_values () =
  (* Beyond "equivalent": check the concrete observable values of the
     medical system survive refinement. *)
  let original = run_ok Workloads.Medical.spec in
  let r =
    refine Workloads.Medical.spec
      Workloads.Designs.design1.Workloads.Designs.d_partition
      Core.Model.Model3
  in
  let refined = run_ok r.Core.Refiner.rf_program in
  Alcotest.(check (list value_testable))
    "log_volume values"
    (trace_values "log_volume" original)
    (trace_values "log_volume" refined);
  Alcotest.(check (list value_testable))
    "final_mode values"
    (trace_values "final_mode" original)
    (trace_values "final_mode" refined);
  (* The medical pipeline must actually compute something non-trivial. *)
  Alcotest.(check bool) "volume non-zero" true
    (match trace_values "log_volume" original with
    | [ Spec.Ast.VInt v ] -> v > 0
    | _ -> false)

let test_refined_deadlock_free_under_all_designs () =
  List.iter
    (fun (d : Workloads.Designs.design) ->
      List.iter
        (fun model ->
          let r =
            refine Workloads.Medical.spec d.Workloads.Designs.d_partition model
          in
          let res = run_ok r.Core.Refiner.rf_program in
          Alcotest.(check bool) "makes progress" true
            (res.Sim.Engine.r_deltas > 0))
        models)
    Workloads.Designs.all

(* Property: random specs + random complete partitions + every model are
   equivalent.  This is the headline guarantee of the reproduction. *)
let prop_generated_equivalence =
  QCheck.Test.make ~count:20 ~name:"generated spec refinement equivalence"
    QCheck.(make
              ~print:(fun (seed, parts) ->
                Printf.sprintf "seed=%d parts=%d" seed parts)
              Gen.(pair (int_range 1 10_000) (int_range 2 3)))
    (fun (seed, n_parts) ->
      let p =
        Workloads.Generator.program
          {
            Workloads.Generator.default_config with
            gen_seed = seed;
            gen_vars = 4;
            gen_leaves = 5;
            gen_stmts = 3;
          }
      in
      let g = Agraph.Access_graph.of_program p in
      let part = Workloads.Generator.random_partition ~seed:(seed + 1) g ~n_parts in
      List.for_all
        (fun model ->
          let r = Core.Refiner.refine p g part model in
          let v =
            Sim.Cosim.check ~original:p ~refined:r.Core.Refiner.rf_program ()
          in
          v.Sim.Cosim.v_equivalent)
        models)

let prop_parallel_equivalence =
  QCheck.Test.make ~count:10 ~name:"parallel-branch specs equivalent per tag"
    QCheck.(make ~print:string_of_int Gen.(int_range 1 10_000))
    (fun seed ->
      let p =
        Workloads.Generator.program
          {
            Workloads.Generator.gen_seed = seed;
            gen_par_branches = 2;
            gen_vars = 4;
            gen_leaves = 6;
            gen_stmts = 3;
          }
      in
      let g = Agraph.Access_graph.of_program p in
      let part = Workloads.Generator.random_partition ~seed:(seed * 3) g ~n_parts:2 in
      List.for_all
        (fun model ->
          let r = Core.Refiner.refine p g part model in
          let v =
            Sim.Cosim.check ~trace_mode:Sim.Cosim.Per_tag ~original:p
              ~refined:r.Core.Refiner.rf_program ()
          in
          v.Sim.Cosim.v_equivalent)
        models)

let test_cosim_reports_divergence () =
  (* A deliberately wrong "refinement" must be flagged. *)
  let original = Workloads.Smallspecs.fig1 in
  let broken =
    {
      original with
      Spec.Ast.p_top =
        Spec.Behavior.map_leaf_stmts
          (Spec.Stmt.map_exprs (Spec.Expr.subst "x" (Spec.Expr.int 0)))
          original.Spec.Ast.p_top;
    }
  in
  let v = Sim.Cosim.check ~original ~refined:broken () in
  Alcotest.(check bool) "flagged" false v.Sim.Cosim.v_equivalent;
  Alcotest.(check bool) "has problems" true (v.Sim.Cosim.v_problems <> [])

let test_cosim_reports_deadlock () =
  let original = Workloads.Smallspecs.fig1 in
  let stuck =
    Spec.Program.make
      ~vars:original.Spec.Ast.p_vars
      ~signals:[ Spec.Builder.bool_signal ~init:false "never" ]
      "stuck"
      (Spec.Behavior.leaf "L"
         [ Spec.Builder.wait_until Spec.Expr.(ref_ "never" = tru) ])
  in
  let v = Sim.Cosim.check ~original ~refined:stuck () in
  Alcotest.(check bool) "flagged" false v.Sim.Cosim.v_equivalent

let () =
  Alcotest.run "cosim"
    [
      ( "workloads x models",
        [
          tc "fig1" test_fig1;
          tc "fig2" test_fig2;
          tc "ping-pong" test_ping_pong;
          tc "medical design1" test_medical_design1;
          tc "medical design2" test_medical_design2;
          tc "medical design3" test_medical_design3;
          tc "elevator" test_elevator_all_models;
          tc "fir (arrays)" test_fir_all_models_and_protocols;
          tc "elevator two-phase" test_elevator_two_phase;
        ] );
      ( "variants",
        [
          tc "forced non-leaf scheme" test_forced_nonleaf_scheme;
          tc "two-phase protocol" test_two_phase_protocol;
          tc "two-phase faster" test_two_phase_is_faster;
          tc "three partitions" test_three_partitions;
          tc "observable values" test_refined_traces_match_original_values;
          tc "deadlock-free designs" test_refined_deadlock_free_under_all_designs;
        ] );
      ( "properties",
        [
          QCheck_alcotest.to_alcotest prop_generated_equivalence;
          QCheck_alcotest.to_alcotest prop_parallel_equivalence;
        ] );
      ( "negative",
        [
          tc "divergence reported" test_cosim_reports_divergence;
          tc "deadlock reported" test_cosim_reports_deadlock;
        ] );
    ]
