(** Tests for the static typechecker, including the key invariant that
    every refined output is well typed. *)

open Spec
open Helpers

let ok p =
  match Typecheck.check p with
  | Ok () -> ()
  | Error errs -> Alcotest.failf "expected well-typed: %s" (String.concat "; " errs)

let bad ?expect p =
  match Typecheck.check p with
  | Ok () -> Alcotest.fail "expected a type error"
  | Error errs ->
    begin match expect with
    | None -> ()
    | Some frag ->
      let contains s =
        let n = String.length frag and m = String.length s in
        let rec go i = i + n <= m && (String.sub s i n = frag || go (i + 1)) in
        go 0
      in
      Alcotest.(check bool)
        (Printf.sprintf "mentions %S in %s" frag (String.concat "; " errs))
        true
        (List.exists contains errs)
    end

let leaf_prog ?vars ?signals ?procs stmts =
  Program.make ?vars ?signals ?procs "t"
    (Behavior.leaf "L" (Parser.stmts_of_string_exn stmts))

let iv name = Builder.int_var name
let bv name = Builder.bool_var name

let test_workloads_well_typed () =
  ok Workloads.Smallspecs.fig1;
  ok Workloads.Smallspecs.fig2;
  ok Workloads.Smallspecs.ping_pong;
  ok Workloads.Medical.spec

let test_refined_well_typed () =
  List.iter
    (fun (d : Workloads.Designs.design) ->
      List.iter
        (fun model ->
          let r =
            refine Workloads.Medical.spec d.Workloads.Designs.d_partition model
          in
          ok r.Core.Refiner.rf_program)
        Core.Model.all)
    Workloads.Designs.all

let test_arith_on_bool () =
  bad ~expect:"arithmetic operand"
    (leaf_prog ~vars:[ iv "x"; bv "b" ] "x := b + 1;")

let test_logic_on_int () =
  bad ~expect:"logical operand"
    (leaf_prog ~vars:[ iv "x"; bv "b" ] "b := b and x;")

let test_assign_mismatch () =
  bad ~expect:"assignment"
    (leaf_prog ~vars:[ iv "x" ] "x := true;");
  bad ~expect:"assignment"
    (leaf_prog ~vars:[ bv "b" ] "b := 1;")

let test_eq_mismatch () =
  bad ~expect:"equality"
    (leaf_prog ~vars:[ iv "x"; bv "b" ] "b := x = b;")

let test_condition_classes () =
  bad ~expect:"if condition" (leaf_prog ~vars:[ iv "x" ] "if x then skip; end if;");
  bad ~expect:"while condition"
    (leaf_prog ~vars:[ iv "x" ] "while x do skip; end while;");
  ok (leaf_prog ~vars:[ iv "x" ] "if x > 0 then skip; end if;")

let test_for_index () =
  bad ~expect:"for index"
    (leaf_prog ~vars:[ bv "b"; iv "x" ] "for b := 0 to 3 do x := 1; end for;")

let test_signal_assign_kinds () =
  bad ~expect:"use <="
    (leaf_prog ~signals:[ Builder.bool_signal "s" ] "s := true;");
  bad ~expect:"use :="
    (leaf_prog ~vars:[ bv "b" ] "b <= true;");
  ok (leaf_prog ~signals:[ Builder.bool_signal "s" ] "s <= true;")

let test_signal_value_mismatch () =
  bad ~expect:"signal assignment"
    (leaf_prog ~signals:[ Builder.bool_signal "s" ] "s <= 3;")

let test_call_typing () =
  let p =
    Builder.proc "f"
      ~params:
        [ Builder.param_in "a" Ast.TBool; Builder.param_out "r" (Ast.TInt 8) ]
      (Parser.stmts_of_string_exn "if a then r := 1; else r := 0; end if;")
  in
  ok (leaf_prog ~procs:[ p ] ~vars:[ iv "x" ] "call f(true, out x);");
  bad ~expect:"argument a"
    (leaf_prog ~procs:[ p ] ~vars:[ iv "x" ] "call f(1, out x);");
  bad ~expect:"expected bool"
    (leaf_prog ~procs:[ p ] ~vars:[ iv "x" ] "call f(1, out x);");
  bad ~expect:"argument r"
    (leaf_prog ~procs:[ p ] ~vars:[ iv "x"; bv "b" ] "call f(true, out b);")

let test_shadowing_changes_class () =
  (* A local boolean shadows a program integer of the same name. *)
  let prog =
    Program.make
      ~vars:[ iv "x" ]
      "t"
      (Behavior.leaf ~vars:[ bv "x" ] "L"
         (Parser.stmts_of_string_exn "x := true;"))
  in
  ok prog

let test_transition_condition_class () =
  let prog =
    Program.make ~vars:[ iv "x" ] "t"
      (Behavior.seq "T"
         [
           Behavior.arm (Behavior.leaf "A" [])
             ~transitions:[ Builder.goto ~cond:(Expr.ref_ "x") "B" ];
           Behavior.arm (Behavior.leaf "B" []);
         ])
  in
  bad ~expect:"transition condition" prog

let test_proc_body_checked () =
  let p =
    Builder.proc "f"
      ~params:[ Builder.param_in "a" Ast.TBool ]
      (Parser.stmts_of_string_exn "a := a + 1;")
  in
  bad ~expect:"procedure f" (leaf_prog ~procs:[ p ] "skip;")

let test_array_rules () =
  let arr = Builder.var "a" (Ast.TArray (16, 4)) in
  ok
    (Program.make ~vars:[ arr ] "t"
       (Behavior.leaf "L" (Parser.stmts_of_string_exn "a[0] := a[1] + 2;")));
  bad ~expect:"without an index"
    (Program.make ~vars:[ arr; Builder.int_var "x" ] "t"
       (Behavior.leaf "L" (Parser.stmts_of_string_exn "x := a;")));
  bad ~expect:"without an index"
    (Program.make ~vars:[ arr ] "t"
       (Behavior.leaf "L" (Parser.stmts_of_string_exn "a := 3;")));
  bad ~expect:"indexed but has type"
    (Program.make ~vars:[ Builder.int_var "x"; Builder.int_var "y" ] "t"
       (Behavior.leaf "L" (Parser.stmts_of_string_exn "y := x[0];")));
  bad ~expect:"array index"
    (Program.make ~vars:[ arr; Builder.bool_var "b" ] "t"
       (Behavior.leaf "L" (Parser.stmts_of_string_exn "a[b] := 1;")));
  bad ~expect:"array type"
    (Program.make
       ~signals:[ Builder.signal "s" (Ast.TArray (8, 2)) ]
       "t" (Behavior.leaf "L" []))

let test_fir_well_typed () =
  ok Workloads.Fir.spec;
  List.iter
    (fun model ->
      let r = refine Workloads.Fir.spec Workloads.Fir.partition model in
      ok r.Core.Refiner.rf_program)
    Core.Model.all

let prop_generated_well_typed =
  QCheck.Test.make ~count:50 ~name:"generated programs are well typed"
    QCheck.(make Gen.(int_range 1 50_000))
    (fun seed ->
      Typecheck.check
        (Workloads.Generator.program
           { Workloads.Generator.default_config with gen_seed = seed })
      = Ok ())

let prop_refined_well_typed =
  QCheck.Test.make ~count:10 ~name:"refined generated programs are well typed"
    QCheck.(make Gen.(int_range 1 10_000))
    (fun seed ->
      let p =
        Workloads.Generator.program
          { Workloads.Generator.default_config with gen_seed = seed }
      in
      let g = Agraph.Access_graph.of_program p in
      let part = Workloads.Generator.random_partition ~seed g ~n_parts:2 in
      List.for_all
        (fun model ->
          let r = Core.Refiner.refine p g part model in
          Typecheck.check r.Core.Refiner.rf_program = Ok ())
        Core.Model.all)

let () =
  Alcotest.run "typecheck"
    [
      ( "well typed",
        [
          tc "workloads" test_workloads_well_typed;
          tc "refined medical (all models)" test_refined_well_typed;
          tc "shadowing" test_shadowing_changes_class;
        ] );
      ( "violations",
        [
          tc "arith on bool" test_arith_on_bool;
          tc "logic on int" test_logic_on_int;
          tc "assign mismatch" test_assign_mismatch;
          tc "eq mismatch" test_eq_mismatch;
          tc "condition classes" test_condition_classes;
          tc "for index" test_for_index;
          tc "signal assign kinds" test_signal_assign_kinds;
          tc "signal value" test_signal_value_mismatch;
          tc "call typing" test_call_typing;
          tc "transition condition" test_transition_condition_class;
          tc "procedure body" test_proc_body_checked;
          tc "array rules" test_array_rules;
          tc "fir refined well typed" test_fir_well_typed;
        ] );
      ( "properties",
        [
          QCheck_alcotest.to_alcotest prop_generated_well_typed;
          QCheck_alcotest.to_alcotest prop_refined_well_typed;
        ] );
    ]
