(** Shared helpers for the test suites. *)

open Spec

let value_testable =
  Alcotest.testable (fun ppf v -> Expr.pp_value ppf v) Ast.equal_value

let expr_testable =
  Alcotest.testable (fun ppf e -> Expr.pp ppf e) Ast.equal_expr

let program_testable =
  Alcotest.testable
    (fun ppf p -> Format.pp_print_string ppf p.Ast.p_name)
    Ast.equal_program

let check_value = Alcotest.check value_testable
let check_expr = Alcotest.check expr_testable

(** Evaluate an expression over an association-list environment. *)
let eval_with env e =
  Expr.eval ~lookup:(fun x -> List.assoc_opt x env) e

let vint n = Ast.VInt n
let vbool b = Ast.VBool b

(** Refine and return the result, failing the test on refiner errors. *)
let refine ?options p part model =
  let g = Agraph.Access_graph.of_program p in
  try Core.Refiner.refine ?options p g part model
  with Core.Refiner.Refine_error msg ->
    Alcotest.failf "refinement failed: %s" msg

(** Full pipeline check: refine, run structural checks, co-simulate. *)
let refine_and_verify ?options ?(trace_mode = Sim.Cosim.Total) p part model =
  let r = refine ?options p part model in
  begin match Core.Check.run ~original:p r with
  | Ok () -> ()
  | Error msgs ->
    Alcotest.failf "structural check failed: %s" (String.concat "; " msgs)
  end;
  let v =
    Sim.Cosim.check ~trace_mode ~original:p ~refined:r.Core.Refiner.rf_program
      ()
  in
  if not v.Sim.Cosim.v_equivalent then
    Alcotest.failf "not equivalent: %s"
      (String.concat "; " v.Sim.Cosim.v_problems);
  r

(** Run a program to completion, failing the test otherwise. *)
let run_ok ?config p =
  let r = Sim.Engine.run ?config p in
  begin match r.Sim.Engine.r_outcome with
  | Sim.Engine.Completed -> ()
  | o -> Alcotest.failf "simulation: %s" (Sim.Engine.outcome_to_string o)
  end;
  r

let trace_values tag r =
  List.filter_map
    (fun e ->
      if String.equal e.Sim.Trace.ev_tag tag then Some e.Sim.Trace.ev_value
      else None)
    r.Sim.Engine.r_trace

let final r name =
  match List.assoc_opt name r.Sim.Engine.r_final with
  | Some v -> v
  | None -> Alcotest.failf "no final value for %s" name

let tc name f = Alcotest.test_case name `Quick f
